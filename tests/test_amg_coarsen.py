"""Tests for the paper-scale spectral engine (PR 6).

Covers the three tentpole layers and their contracts:

* the pure-SciPy smoothed-aggregation AMG machinery (aggregation covers
  every vertex, the V-cycle contracts residuals, block application matches
  column-wise matvecs) and the ``amg`` backend's closed-form parity on
  hypercube/butterfly spectra — cold and warm, float64 and float32 — at
  sizes that exercise the *real* multigrid path, not the dense fallback;
* matrix-free :class:`~repro.graphs.laplacian.LaplacianOperator` inputs
  (including sharded row blocks) agreeing with assembled-CSR solves, and
  ``resolve_method`` auto-routing (dense / sparse / amg by size, the
  ``$REPRO_SOLVER_BACKEND`` escape hatch, resolved ids recorded everywhere
  an ``"auto"`` could previously leak);
* interlacing-certified coarsening: hypothesis property tests that the
  certified intervals contain the exact eigenvalues on random DAGs (both
  the raw interval arithmetic and the public entry point), non-trivial
  lower ends for small deletion counts, the interval cache/store tiers,
  and the engine/service surfaces (``spectral_interval``,
  ``method="spectral-coarse"``).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import BoundEngine
from repro.core.result import IntervalBoundResult
from repro.core.spectra import butterfly_spectrum_array, hypercube_spectrum_array
from repro.graphs.generators import fft_graph, hypercube_graph
from repro.graphs.generators.random_graphs import random_dag
from repro.graphs.laplacian import LaplacianOperator, laplacian, laplacian_operator
from repro.runtime.families import GraphSpec
from repro.runtime.service import BoundQuery, BoundService
from repro.runtime.store import SpectrumStore
from repro.solvers.amg import (
    SmoothedAggregationPreconditioner,
    aggregate_vertices,
    smoothed_aggregation_preconditioner,
    strength_graph,
)
from repro.solvers.backend import EigenSolverOptions, smallest_eigenvalues
from repro.solvers.backends import (
    AMG_AUTO_CUTOFF,
    SOLVER_BACKEND_ENV_VAR,
    WarmStartContext,
    available_backends,
    resolve_method,
    solve_smallest,
)
from repro.solvers.coarsen import (
    COARSEN_MIN_VERTICES,
    _interval_arrays,
    certified_interval_spectrum,
    coarse_plan,
    coarse_variant,
    coarsen_keep_indices,
    principal_submatrix,
)
from repro.solvers.spectrum_cache import SpectrumCache

H = 12

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# (n, edge probability, seed) for small random DAGs (repo-wide idiom).
dag_params = st.tuples(
    st.integers(min_value=4, max_value=24),
    st.floats(min_value=0.05, max_value=0.9),
    st.integers(min_value=0, max_value=10_000),
)


def shifted_fft_laplacian(levels: int) -> sp.csr_matrix:
    lap = laplacian(fft_graph(levels), normalized=False, sparse=True).tocsr()
    return (lap + 1e-2 * sp.identity(lap.shape[0], format="csr")).tocsr()


class TestAmgMachinery:
    """The pure-SciPy smoothed-aggregation building blocks."""

    def test_aggregation_labels_every_vertex(self):
        matrix = shifted_fft_laplacian(6)
        labels = aggregate_vertices(strength_graph(matrix))
        assert labels.shape == (matrix.shape[0],)
        assert labels.min() >= 0
        # Aggregate ids are contiguous 0..num_aggregates-1.
        assert set(np.unique(labels)) == set(range(labels.max() + 1))
        assert labels.max() + 1 < matrix.shape[0]  # actually coarsens

    def test_hierarchy_has_multiple_levels(self):
        matrix = shifted_fft_laplacian(6)  # n = 448
        precond = SmoothedAggregationPreconditioner(matrix, coarse_size=50)
        assert precond.num_levels >= 2
        assert precond.operator_complexity() >= 1.0

    def test_vcycle_contracts_residual(self):
        matrix = shifted_fft_laplacian(6)
        precond = smoothed_aggregation_preconditioner(matrix)
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal(matrix.shape[0])
        x = precond @ rhs
        assert np.linalg.norm(rhs - matrix @ x) < 0.5 * np.linalg.norm(rhs)

    def test_block_application_matches_columnwise(self):
        matrix = shifted_fft_laplacian(5)
        precond = smoothed_aggregation_preconditioner(matrix)
        rng = np.random.default_rng(1)
        block = rng.standard_normal((matrix.shape[0], 4))
        stacked = np.stack([precond @ block[:, j] for j in range(4)], axis=1)
        np.testing.assert_allclose(precond @ block, stacked, atol=1e-12)


class TestAmgBackendParity:
    """Closed-form parity at sizes where the real multigrid path runs.

    The amg backend falls back to dense below ``5 * (k + 8)`` vertices, so
    these tests use n >= 256 to guarantee LOBPCG + AMG actually executes.
    """

    def test_hypercube_parity_cold(self):
        dimension = 8  # n = 256
        exact = hypercube_spectrum_array(dimension)[:H]
        lap = laplacian(hypercube_graph(dimension), normalized=False, sparse=True)
        values = smallest_eigenvalues(lap, H, EigenSolverOptions(method="amg"))
        np.testing.assert_allclose(values, exact, atol=1e-5)

    def test_butterfly_parity_cold(self):
        levels = 6  # n = 448
        exact = butterfly_spectrum_array(levels)[:H]
        lap = laplacian(fft_graph(levels), normalized=False, sparse=True)
        values = smallest_eigenvalues(lap, H, EigenSolverOptions(method="amg"))
        np.testing.assert_allclose(values, exact, atol=1e-5)

    def test_butterfly_parity_float32(self):
        levels = 6
        exact = butterfly_spectrum_array(levels)[:H]
        lap = laplacian(fft_graph(levels), normalized=False, sparse=True)
        options = EigenSolverOptions(method="amg", dtype="float32")
        values = smallest_eigenvalues(lap, H, options)
        assert values.dtype == np.float64  # results are always upcast
        np.testing.assert_allclose(values, exact, atol=1e-3)

    @pytest.mark.parametrize("dtype", ("float64", "float32"))
    def test_warm_resolve_matches_cold(self, dtype):
        options = EigenSolverOptions(method="amg", dtype=dtype)
        context = WarmStartContext()
        lap = laplacian(fft_graph(6), normalized=False, sparse=True)
        cold = solve_smallest(lap, H, options, warm_start=context, lineage="fft")
        assert not cold.warm_started
        assert cold.backend == "amg"
        warm = solve_smallest(lap, H, options, warm_start=context, lineage="fft")
        assert warm.warm_started
        atol = 1e-3 if dtype == "float32" else 1e-6
        np.testing.assert_allclose(warm.eigenvalues, cold.eigenvalues, atol=atol)

    def test_operator_input_matches_csr(self):
        graph = fft_graph(6)
        csr = laplacian(graph, normalized=False, sparse=True)
        operator = laplacian_operator(graph, normalized=False)
        options = EigenSolverOptions(method="amg")
        from_csr = smallest_eigenvalues(csr, H, options)
        from_op = smallest_eigenvalues(operator, H, options)
        np.testing.assert_allclose(from_op, from_csr, atol=1e-7)


class TestLaplacianOperator:
    def test_matvec_matches_assembled_matrix(self):
        graph = fft_graph(5)
        dense = laplacian(graph, normalized=False, sparse=False)
        operator = laplacian_operator(graph, normalized=False)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(graph.num_vertices)
        np.testing.assert_allclose(operator @ x, dense @ x, atol=1e-10)
        np.testing.assert_allclose(operator.tocsr().toarray(), dense, atol=1e-12)
        np.testing.assert_allclose(operator.diagonal(), np.diag(dense), atol=1e-12)

    def test_sharded_row_blocks_match(self):
        graph = hypercube_graph(7)
        full = laplacian_operator(graph, normalized=True)
        sharded = laplacian_operator(graph, normalized=True, block_rows=17)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(graph.num_vertices)
        block = rng.standard_normal((graph.num_vertices, 3))
        np.testing.assert_allclose(sharded @ x, full @ x, atol=1e-12)
        np.testing.assert_allclose(sharded @ block, full @ block, atol=1e-12)

    def test_astype_roundtrip(self):
        operator = laplacian_operator(fft_graph(4), normalized=False)
        assert operator.astype(np.float64) is operator
        f32 = operator.astype(np.float32)
        assert isinstance(f32, LaplacianOperator)
        assert f32.dtype == np.float32

    def test_rejects_bad_block_rows(self):
        with pytest.raises(ValueError, match="block_rows"):
            laplacian_operator(fft_graph(4), block_rows=0)


class TestResolveMethod:
    def test_explicit_method_always_wins(self):
        options = EigenSolverOptions(method="power")
        assert resolve_method("power", 10**6, 5, options) == "power"

    def test_auto_routes_by_size(self):
        options = EigenSolverOptions()
        assert resolve_method("auto", 100, 5, options) == "dense"
        assert resolve_method("auto", 10_000, 5, options) == "sparse"
        assert resolve_method("auto", AMG_AUTO_CUTOFF + 1, 5, options) == "amg"

    def test_auto_never_dense_above_cutoff(self):
        # Full-spectrum requests (k >= n-1) go dense only below the cap.
        options = EigenSolverOptions()
        assert resolve_method("auto", 20_000, 19_999, options) == "dense"
        n = 60_000
        assert resolve_method("auto", n, n - 1, options) == "amg"

    def test_env_var_forces_auto_solves(self, monkeypatch):
        options = EigenSolverOptions()
        monkeypatch.setenv(SOLVER_BACKEND_ENV_VAR, "lanczos")
        assert resolve_method("auto", 100, 5, options) == "lanczos"
        assert resolve_method("auto", 10**6, 5, options) == "lanczos"
        # Explicit methods ignore the escape hatch.
        assert resolve_method("dense", 100, 5, options) == "dense"

    def test_env_var_invalid_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SOLVER_BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=SOLVER_BACKEND_ENV_VAR):
            resolve_method("auto", 100, 5, EigenSolverOptions())

    def test_env_var_applies_end_to_end(self, monkeypatch):
        monkeypatch.setenv(SOLVER_BACKEND_ENV_VAR, "lobpcg")
        lap = laplacian(fft_graph(4), normalized=False, sparse=True)
        result = solve_smallest(lap, 6, EigenSolverOptions())
        assert result.backend == "lobpcg"  # auto would have picked dense


class TestResolvedBackendRecording:
    """No surface may record the literal string "auto" as a backend id."""

    def test_solve_smallest_records_resolved_id(self):
        lap = laplacian(fft_graph(4), normalized=False, sparse=True)
        result = solve_smallest(lap, 6, EigenSolverOptions())
        assert result.backend in available_backends()

    def test_zero_eigenvalue_request_resolves_backend(self):
        lap = laplacian(fft_graph(4), normalized=False, sparse=True)
        result = solve_smallest(lap, 0, EigenSolverOptions())
        assert result.backend in available_backends()
        assert result.eigenvalues.shape == (0,)

    def test_cache_and_store_record_resolved_id(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        cache = SpectrumCache(store=store)
        fetched = cache.spectrum(fft_graph(4), 6)  # default options: auto
        assert fetched.backend in available_backends()
        assert store.entries()[0]["backend"] in available_backends()

    def test_engine_solve_log_records_resolved_id(self):
        engine = BoundEngine(fft_graph(4), num_eigenvalues=6, cache=SpectrumCache())
        engine.spectral(M=4)
        assert all(r.backend in available_backends() for r in engine.solve_log)


class TestInterlacingContainment:
    """The certified intervals provably contain the exact eigenvalues."""

    @given(
        params=dag_params,
        keep_fraction=st.floats(min_value=0.3, max_value=1.0),
        coarsen_seed=st.integers(min_value=0, max_value=100),
    )
    @common_settings
    def test_interval_arithmetic_on_random_dags(
        self, params, keep_fraction, coarsen_seed
    ):
        """Raw interlacing arithmetic, bypassing the small-n exact shortcut."""
        n, p, seed = params
        lap = laplacian(random_dag(n, edge_probability=p, seed=seed), normalized=False)
        exact = np.linalg.eigvalsh(lap)
        num_coarse = max(1, int(round(keep_fraction * n)))
        keep = coarsen_keep_indices(n, num_coarse, seed=coarsen_seed)
        coarse = np.linalg.eigvalsh(
            principal_submatrix(sp.csr_matrix(lap), keep).toarray()
        )
        h = num_coarse
        lower, upper = _interval_arrays(coarse, h, n - num_coarse)
        assert np.all(lower <= upper + 1e-12)
        assert np.all(lower - 1e-8 <= exact[:h])
        assert np.all(exact[:h] <= upper + 1e-8)

    @given(
        n=st.integers(min_value=COARSEN_MIN_VERTICES, max_value=96),
        p=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=1000),
        ratio=st.floats(min_value=0.5, max_value=0.98),
    )
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_public_entry_point_on_random_dags(self, n, p, seed, ratio):
        lap = laplacian(random_dag(n, edge_probability=p, seed=seed), normalized=True)
        exact = np.linalg.eigvalsh(lap)
        h = 10
        interval = certified_interval_spectrum(sp.csr_matrix(lap), h, ratio=ratio)
        assert interval.contains(exact[:h])
        assert np.all(np.asarray(interval.lower) <= np.asarray(interval.upper) + 1e-12)
        num_coarse, exact_plan = coarse_plan(n, h, ratio)
        assert interval.exact == exact_plan
        assert interval.num_coarse == num_coarse

    def test_small_deletion_gives_nontrivial_lower_ends(self):
        # Deleting m=1 vertex from a connected graph's Laplacian leaves a
        # positive-definite principal submatrix, so every lower end beyond
        # index m is strictly positive (the informative regime).
        dimension = 7  # n = 128
        lap = laplacian(hypercube_graph(dimension), normalized=False, sparse=True)
        exact = hypercube_spectrum_array(dimension)
        h = 10
        interval = certified_interval_spectrum(lap, h, ratio=127.0 / 128.0)
        assert not interval.exact
        assert interval.num_deleted == 1
        assert interval.contains(exact[:h])
        assert np.all(np.asarray(interval.lower)[1:] > 0.0)

    def test_small_graphs_degenerate_to_exact(self):
        lap = laplacian(fft_graph(3), normalized=False, sparse=True)
        interval = certified_interval_spectrum(lap, 6, ratio=0.5)
        assert interval.exact
        np.testing.assert_array_equal(interval.lower, interval.upper)

    def test_deterministic_in_seed(self):
        lap = laplacian(hypercube_graph(7), normalized=False, sparse=True)
        first = certified_interval_spectrum(lap, 8, ratio=0.5, seed=3)
        second = certified_interval_spectrum(lap, 8, ratio=0.5, seed=3)
        np.testing.assert_array_equal(first.upper, second.upper)
        np.testing.assert_array_equal(first.lower, second.lower)

    def test_validation(self):
        lap = laplacian(fft_graph(3), normalized=False, sparse=True)
        with pytest.raises(ValueError, match="ratio"):
            certified_interval_spectrum(lap, 4, ratio=0.0)
        with pytest.raises(ValueError, match="ratio"):
            certified_interval_spectrum(lap, 4, ratio=1.5)
        with pytest.raises(ValueError, match="eigenvalues"):
            certified_interval_spectrum(lap, lap.shape[0] + 1)

    def test_variant_tag_round_trip(self):
        assert coarse_variant(0.5, 0) == "coarse-r0.5-s0"
        assert coarse_variant(0.25, 7) == "coarse-r0.25-s7"


class TestIntervalCacheTiers:
    GRAPH = hypercube_graph(7)  # n = 128: big enough to actually coarsen

    def test_memory_cache_hit_and_prefix_serving(self):
        cache = SpectrumCache()
        first = cache.interval_spectrum(self.GRAPH, 10)
        assert not first.cache_hit and cache.misses == 1
        again = cache.interval_spectrum(self.GRAPH, 10)
        assert again.cache_hit
        prefix = cache.interval_spectrum(self.GRAPH, 6)
        assert prefix.cache_hit  # served as a prefix of the h=10 entry
        np.testing.assert_array_equal(prefix.upper, first.upper[:6])
        np.testing.assert_array_equal(prefix.lower, first.lower[:6])
        assert cache.misses == 1

    def test_interval_and_exact_entries_coexist(self):
        cache = SpectrumCache()
        cache.interval_spectrum(self.GRAPH, 8)
        cache.spectrum(self.GRAPH, 8)
        assert cache.misses == 2  # distinct tiers, no cross-contamination

    def test_store_round_trip_with_variant(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        cache = SpectrumCache(store=store)
        first = cache.interval_spectrum(self.GRAPH, 8, coarsen_seed=1)
        assert not first.cache_hit
        rows = store.entries()
        assert len(rows) == 1
        assert rows[0]["variant"] == coarse_variant(seed=1)
        assert store.verify()["ok"]
        # A fresh cache against the same store serves the interval from disk.
        warm = SpectrumCache(store=SpectrumStore(tmp_path / "s"))
        served = warm.interval_spectrum(self.GRAPH, 8, coarsen_seed=1)
        assert served.cache_hit and warm.store_hits == 1
        np.testing.assert_allclose(served.upper, first.upper, atol=1e-12)
        np.testing.assert_allclose(served.lower, first.lower, atol=1e-12)
        # A different coarsening seed is a different variant: real solve.
        other = warm.interval_spectrum(self.GRAPH, 8, coarsen_seed=2)
        assert not other.cache_hit


class TestEngineAndServiceIntervals:
    def test_engine_interval_brackets_exact_bound(self):
        graph = hypercube_graph(7)
        cache = SpectrumCache()
        engine = BoundEngine(graph, num_eigenvalues=10, cache=cache)
        interval = engine.spectral_interval(8)
        exact = engine.spectral(8)
        assert isinstance(interval, IntervalBoundResult)
        assert interval.value == interval.value_lo
        assert interval.value_lo <= exact.value + 1e-9
        assert exact.value <= interval.value_hi + 1e-9
        assert interval.width >= 0.0
        data = interval.as_dict()
        assert "lower_eigenvalues" not in data and "upper_eigenvalues" not in data

    def test_engine_interval_is_cached(self):
        engine = BoundEngine(hypercube_graph(7), num_eigenvalues=10, cache=SpectrumCache())
        engine.spectral_interval(8)
        solves = engine.num_eigensolves
        engine.spectral_interval(16)  # same spectrum, different M
        assert engine.num_eigensolves == solves

    def test_sweep_accepts_spectral_coarse(self):
        engine = BoundEngine(hypercube_graph(7), num_eigenvalues=10, cache=SpectrumCache())
        points = engine.sweep([4, 8], methods=("spectral-coarse",))
        assert len(points) == 2
        assert all(isinstance(p.result, IntervalBoundResult) for p in points)

    def test_service_routes_spectral_coarse(self):
        service = BoundService(store=None, num_eigenvalues=10)
        spec = GraphSpec(family="hypercube", size_param=7)
        coarse, exact = service.submit(
            [
                BoundQuery(graph=spec, memory_size=8, method="spectral-coarse"),
                BoundQuery(graph=spec, memory_size=8),
            ]
        )
        assert coarse.bound_lo is not None and coarse.bound_hi is not None
        assert coarse.bound == coarse.bound_lo
        assert coarse.bound_lo <= exact.bound <= coarse.bound_hi + 1e-9
        assert exact.bound_lo is None and exact.bound_hi is None

    def test_service_rejects_unknown_method(self):
        service = BoundService(store=None, num_eigenvalues=10)
        spec = GraphSpec(family="hypercube", size_param=4)
        with pytest.raises(ValueError, match="unknown method"):
            service.submit([BoundQuery(graph=spec, memory_size=8, method="nope")])
