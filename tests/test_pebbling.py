"""Tests for the two-level-memory simulator and eviction policies."""

from __future__ import annotations

import pytest

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    binary_tree_reduction_graph,
    chain_graph,
    diamond_graph,
    fft_graph,
    inner_product_graph,
)
from repro.graphs.orders import natural_topological_order
from repro.pebbling.policies import EVICTION_POLICIES, make_policy
from repro.pebbling.simulator import best_simulated_io, simulate_order


class TestSimulatorBasics:
    def test_chain_needs_no_io(self):
        g = chain_graph(20)
        result = simulate_order(g, natural_topological_order(g), M=2)
        assert result.total_io == 0
        assert result.reads == 0 and result.writes == 0
        assert result.max_resident <= 2

    def test_inner_product_fits_in_large_memory(self):
        g = inner_product_graph(4)
        result = simulate_order(g, natural_topological_order(g), M=g.num_vertices)
        assert result.total_io == 0
        assert result.trivial_reads == 8  # the inputs
        assert result.trivial_writes >= 1  # the final output

    def test_butterfly_with_tight_memory_incurs_io(self):
        # The butterfly needs a whole column live at a time; with M=4 the
        # natural column-major order must spill and re-read values.
        g = fft_graph(3)
        result = simulate_order(g, natural_topological_order(g), M=4)
        assert result.total_io > 0
        assert result.writes >= 1
        assert result.reads >= 1

    def test_reads_and_writes_are_paired_for_reused_values(self):
        g = fft_graph(3)
        result = simulate_order(g, natural_topological_order(g), M=4)
        # Every value written while still needed is read back at least once.
        assert result.reads >= result.writes

    def test_diamond_fits_exactly(self):
        # With M = width + 1 the diamond runs without any non-trivial I/O:
        # the source becomes dead right before the sink needs its slot.
        g = diamond_graph(6)
        result = simulate_order(g, natural_topological_order(g), M=7)
        assert result.total_io == 0

    def test_io_monotone_nonincreasing_in_memory(self):
        g = fft_graph(4)
        order = natural_topological_order(g)
        ios = [simulate_order(g, order, M).total_io for M in (3, 4, 8, 16, 64)]
        assert all(a >= b for a, b in zip(ios, ios[1:]))

    def test_zero_io_when_everything_fits(self):
        g = fft_graph(3)
        result = simulate_order(g, natural_topological_order(g), M=g.num_vertices)
        assert result.total_io == 0

    def test_insufficient_memory_for_operands_rejected(self):
        g = binary_tree_reduction_graph(4)
        with pytest.raises(ValueError, match="in-degree"):
            simulate_order(g, natural_topological_order(g), M=2)

    def test_invalid_order_rejected(self):
        g = chain_graph(4)
        with pytest.raises(ValueError, match="topological"):
            simulate_order(g, [3, 2, 1, 0], M=2)

    def test_validate_order_can_be_skipped(self):
        g = chain_graph(4)
        result = simulate_order(g, [0, 1, 2, 3], M=2, validate_order=False)
        assert result.total_io == 0

    def test_result_metadata(self):
        g = inner_product_graph(2)
        result = simulate_order(g, natural_topological_order(g), M=4, policy="lru")
        assert result.memory_size == 4
        assert result.policy == "lru"
        assert result.max_resident <= 4


class TestPolicies:
    @pytest.mark.parametrize("policy", EVICTION_POLICIES)
    def test_all_policies_run(self, policy):
        g = fft_graph(3)
        order = natural_topological_order(g)
        result = simulate_order(g, order, M=4, policy=policy, seed=1)
        assert result.total_io >= 0

    def test_belady_no_worse_than_fifo_on_butterfly(self):
        g = fft_graph(4)
        order = natural_topological_order(g)
        belady = simulate_order(g, order, M=4, policy="belady").total_io
        fifo = simulate_order(g, order, M=4, policy="fifo").total_io
        lru = simulate_order(g, order, M=4, policy="lru").total_io
        assert belady <= fifo
        assert belady <= lru

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nonsense")
        g = chain_graph(3)
        with pytest.raises(ValueError):
            simulate_order(g, [0, 1, 2], M=2, policy="nonsense")

    def test_policy_factory(self):
        for name in EVICTION_POLICIES:
            policy = make_policy(name, seed=0)
            assert hasattr(policy, "choose_victim")


class TestBestSimulated:
    def test_returns_best_over_schedules(self):
        g = fft_graph(3)
        best = best_simulated_io(g, M=4)
        natural = simulate_order(g, natural_topological_order(g), M=4)
        assert best.total_io <= natural.total_io

    def test_zero_for_chain(self):
        assert best_simulated_io(chain_graph(30), M=2).total_io == 0

    def test_custom_schedulers_and_policies(self):
        g = inner_product_graph(5)
        result = best_simulated_io(
            g, M=3, schedulers=("natural", "min-live"), policies=("belady", "lru")
        )
        assert result.total_io >= 0


class TestConservationProperties:
    def test_every_write_is_of_a_live_value(self):
        """Writes only happen for values with remaining uses, so the number of
        writes can never exceed the number of non-sink vertices."""
        g = fft_graph(4)
        order = natural_topological_order(g)
        result = simulate_order(g, order, M=4)
        non_sinks = sum(1 for v in g.vertices() if g.out_degree(v) > 0)
        assert result.writes <= non_sinks

    def test_reads_bounded_by_edges(self):
        """Each edge can force at most one read of its source per consumer."""
        g = fft_graph(4)
        order = natural_topological_order(g)
        result = simulate_order(g, order, M=4)
        assert result.reads <= g.num_edges

    def test_single_vertex_graph(self):
        g = ComputationGraph(1)
        result = simulate_order(g, [0], M=1)
        assert result.total_io == 0
        assert result.max_resident == 1
