"""Tests for the convex min-cut baseline (Elango et al., reconstructed)."""

from __future__ import annotations

import pytest

from repro.baselines.convex_mincut import (
    convex_min_cut_bound,
    convex_min_cut_max_value,
    convex_min_cut_value,
    partitioned_convex_min_cut_bound,
)
from repro.baselines.exact import minimum_io_upper_bound
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    chain_graph,
    diamond_graph,
    fft_graph,
    inner_product_graph,
    naive_matmul_graph,
)


class TestCutValues:
    def test_chain_has_unit_wavefront(self):
        g = chain_graph(6)
        # Any prefix through an interior vertex has exactly one live value.
        assert convex_min_cut_value(g, 2) == 1

    def test_sink_vertex_gives_zero(self):
        g = chain_graph(4)
        assert convex_min_cut_value(g, 3) == 0

    def test_diamond_wavefront(self):
        # Source feeding 4 middle vertices feeding one sink: right after the
        # source is computed (and before the sink), the source itself is the
        # only mandatory live value, so C(source) = 1; but each middle vertex
        # forces the source plus itself to stay live only until its last use —
        # the minimum convex prefix through a middle vertex has wavefront 2.
        g = diamond_graph(4)
        middle = [v for v in g.vertices() if g.op(v) == "f"][0]
        assert convex_min_cut_value(g, 0) == 1
        assert convex_min_cut_value(g, middle) == 2

    def test_butterfly_outputs_have_zero_cut(self):
        g = fft_graph(4)
        # Vertices in the last column have no descendants, hence C(v) = 0.
        assert convex_min_cut_value(g, 16 * 4 + 0) == 0

    def test_butterfly_max_cut_grows_with_size(self):
        small, _ = convex_min_cut_max_value(fft_graph(2))
        large, _ = convex_min_cut_max_value(fft_graph(4))
        assert large >= small
        assert large >= 4  # a non-trivial wavefront exists in B_4

    def test_max_value_and_witness(self):
        g = fft_graph(3)
        max_cut, witness = convex_min_cut_max_value(g)
        assert witness is not None
        assert max_cut == max(convex_min_cut_value(g, v) for v in g.vertices())

    def test_invalid_vertex_rejected(self):
        with pytest.raises(ValueError):
            convex_min_cut_value(chain_graph(3), 10)


class TestBound:
    def test_trivial_when_memory_large(self):
        g = inner_product_graph(3)
        assert convex_min_cut_bound(g, M=64).value == 0.0

    def test_positive_on_butterfly_with_small_memory(self):
        g = fft_graph(4)
        result = convex_min_cut_bound(g, M=3)
        assert result.value > 0
        assert result.method == "convex-min-cut"
        assert result.witness_vertex is not None

    def test_formula_relationship(self):
        g = fft_graph(3)
        max_cut, _ = convex_min_cut_max_value(g)
        for M in (2, 4, 8, 64):
            assert convex_min_cut_bound(g, M).value == max(0.0, 2.0 * (max_cut - M))

    def test_trivial_on_naive_matmul(self):
        """§6.3: the convex min-cut baseline is trivial for naive matmul at the
        paper's memory sizes."""
        g = naive_matmul_graph(4, reduction="flat")
        assert convex_min_cut_bound(g, M=32).value == 0.0

    def test_monotone_nonincreasing_in_memory(self):
        g = fft_graph(4)
        values = [convex_min_cut_bound(g, M).value for M in (2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_vertex_subset_is_weaker_but_valid(self):
        g = fft_graph(4)
        full = convex_min_cut_bound(g, M=4)
        partial = convex_min_cut_bound(g, M=4, vertices=range(0, g.num_vertices, 7))
        assert partial.value <= full.value

    def test_soundness_against_simulated_upper_bound(self):
        """The baseline is a *lower* bound: it can never exceed the I/O of a
        concrete simulated execution."""
        for graph, M in ((fft_graph(3), 4), (inner_product_graph(4), 3), (diamond_graph(2), 3)):
            lower = convex_min_cut_bound(graph, M).value
            upper = minimum_io_upper_bound(graph, M).total_io
            assert lower <= upper + 1e-9

    def test_empty_graph(self):
        assert convex_min_cut_bound(ComputationGraph(), M=2).value == 0.0


class TestBackendsAndCaching:
    def test_bound_records_backend_and_flow_calls(self):
        g = fft_graph(3)
        result = convex_min_cut_bound(g, M=4)
        assert result.backend is not None
        assert result.flow_calls > 0
        assert result.details["pruned"] >= 0.0

    def test_bound_identical_across_backends(self):
        g = fft_graph(3)
        values = {
            backend: convex_min_cut_bound(g, M=3, backend=backend).value
            for backend in ("dinic", "array-dinic", "scipy")
        }
        assert len(set(values.values())) == 1, values

    def test_warm_store_bound_is_flow_free(self, tmp_path):
        from repro.runtime.store import CutStore

        store = CutStore(tmp_path / "cuts")
        g = fft_graph(4)
        cold = convex_min_cut_bound(g, M=3, store=store)
        assert cold.flow_calls > 0
        warm = convex_min_cut_bound(g, M=3, store=store)
        assert warm.value == cold.value
        assert warm.flow_calls == 0
        assert warm.details["store_served"] > 0

    def test_prune_disabled_matches_legacy_witness(self):
        g = fft_graph(3)
        max_cut, witness = convex_min_cut_max_value(g, prune=False)
        # Exhaustive order: the witness is the first maximiser in vertex order.
        cuts = [convex_min_cut_value(g, v) for v in g.vertices()]
        assert witness == cuts.index(max(cuts))


class TestPartitionedVariant:
    def test_partitioned_runs_and_is_nonnegative(self):
        g = fft_graph(3)
        result = partitioned_convex_min_cut_bound(g, M=4)
        assert result.value >= 0.0
        assert result.method == "convex-min-cut-partitioned"
        assert result.details["num_parts"] >= 1

    def test_partitioned_is_trivial_with_default_part_size(self):
        """§6.3: with sub-graphs of 2M vertices the bound collapses to ~0 on
        the complex evaluation graphs — the reason the paper plots the
        whole-graph variant."""
        g = fft_graph(4)
        partitioned = partitioned_convex_min_cut_bound(g, M=8)
        whole = convex_min_cut_bound(g, M=8)
        assert partitioned.value <= max(whole.value, 1e-9) or partitioned.value == 0.0

    def test_custom_part_size(self):
        g = fft_graph(3)
        result = partitioned_convex_min_cut_bound(g, M=4, max_part_size=16)
        assert result.details["max_part_size"] == 16.0

    def test_identical_parts_are_deduplicated(self):
        # A long chain partitions into structurally identical chains: only
        # the distinct fingerprints pay for cuts.
        g = chain_graph(32)
        result = partitioned_convex_min_cut_bound(g, M=2, max_part_size=4)
        assert result.details["num_parts"] == 8.0
        assert result.details["unique_parts"] < result.details["num_parts"]

    def test_partitioned_value_unchanged_by_dedup_and_backend(self):
        g = fft_graph(3)
        results = [
            partitioned_convex_min_cut_bound(g, M=4, backend=backend).value
            for backend in ("dinic", "array-dinic", "scipy")
        ]
        assert len(set(results)) == 1

    def test_partitioned_uses_cut_store(self, tmp_path):
        from repro.runtime.store import CutStore

        store = CutStore(tmp_path / "cuts")
        # Chain parts have internal edges, so per-part cuts need real flows
        # (an fft's contiguous parts are edgeless columns — trivially zero).
        g = chain_graph(24)
        cold = partitioned_convex_min_cut_bound(g, M=2, max_part_size=6, store=store)
        assert cold.flow_calls > 0
        warm = partitioned_convex_min_cut_bound(g, M=2, max_part_size=6, store=store)
        assert warm.value == cold.value
        assert warm.flow_calls == 0
