"""Tests for the quadratic-program view of Theorem 3.

The key identities verified here:

* the trace formulation and the direct edge-boundary formulation of the
  partition objective agree exactly (Equation 3 lifted to partitions), and
* the spectral bound of Theorem 4 never exceeds the partition objective of any
  concrete topological order (the relaxation chain is sound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import spectral_bound
from repro.core.qp import (
    best_partition_objective_for_order,
    partition_objective_for_order,
    partition_objective_trace_form,
    schedule_laplacian,
)
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    inner_product_graph,
    random_dag,
)
from repro.graphs.laplacian import laplacian
from repro.graphs.orders import natural_topological_order, random_topological_order


class TestScheduleLaplacian:
    def test_reindexing(self):
        g = inner_product_graph(2)
        L = laplacian(g, normalized=True)
        order = natural_topological_order(g)
        Ls = schedule_laplacian(L, order)
        for t1 in range(len(order)):
            for t2 in range(len(order)):
                assert Ls[t1, t2] == pytest.approx(L[order[t1], order[t2]])

    def test_identity_order_is_noop(self):
        g = fft_graph(2)
        L = laplacian(g, normalized=True)
        np.testing.assert_allclose(schedule_laplacian(L, range(g.num_vertices)), L)


class TestObjectiveEquivalence:
    @pytest.mark.parametrize("normalized", [True, False])
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_trace_form_equals_boundary_form(self, normalized, k):
        g = fft_graph(3)
        order = random_topological_order(g, seed=k)
        direct = partition_objective_for_order(g, order, k, M=4, normalized=normalized)
        trace = partition_objective_trace_form(g, order, k, M=4, normalized=normalized)
        assert direct == pytest.approx(trace)

    def test_trace_form_on_random_dag(self):
        g = random_dag(18, edge_probability=0.3, seed=11)
        order = natural_topological_order(g)
        for k in (2, 4, 7):
            assert partition_objective_for_order(g, order, k, M=3) == pytest.approx(
                partition_objective_trace_form(g, order, k, M=3)
            )

    def test_invalid_order_rejected(self):
        g = inner_product_graph(2)
        bad_order = list(reversed(range(g.num_vertices)))
        with pytest.raises(ValueError, match="topological"):
            partition_objective_for_order(g, bad_order, 2, M=2)


class TestRelaxationChain:
    """Theorem 4's bound must never exceed the Lemma-1 bound of any order."""

    @pytest.mark.parametrize(
        "graph_builder,size",
        [
            (fft_graph, 3),
            (bellman_held_karp_graph, 4),
            (inner_product_graph, 4),
        ],
    )
    @pytest.mark.parametrize("M", [2, 4])
    def test_spectral_below_best_partition_of_any_order(self, graph_builder, size, M):
        graph = graph_builder(size)
        if graph.max_in_degree + 1 > M:
            pytest.skip("infeasible memory size for this graph")
        spectral = spectral_bound(graph, M, num_eigenvalues=graph.num_vertices)
        for seed in range(3):
            order = random_topological_order(graph, seed=seed)
            best_value, _ = best_partition_objective_for_order(graph, order, M)
            # The partition bound for a concrete order upper-bounds the
            # order-free spectral relaxation (up to numerical tolerance).
            assert spectral.raw_value <= best_value + 1e-6

    def test_best_partition_reports_maximiser(self):
        g = fft_graph(3)
        order = natural_topological_order(g)
        value, k = best_partition_objective_for_order(g, order, M=2, k_values=range(1, 9))
        assert 1 <= k <= 8
        assert value == pytest.approx(
            partition_objective_for_order(g, order, k, M=2)
        )

    def test_empty_graph(self):
        from repro.graphs.compgraph import ComputationGraph

        value, k = best_partition_objective_for_order(ComputationGraph(), [], M=2)
        assert value == 0.0 and k == 1
