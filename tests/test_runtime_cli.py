"""Tests for the BoundService batch front-end and the ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.graphs.generators import fft_graph
from repro.graphs.io import save_graph_npz
from repro.runtime.cli import main
from repro.runtime.families import GraphSpec
from repro.runtime.service import BoundQuery, BoundService
from repro.runtime.store import SpectrumStore


class TestBoundService:
    def test_batch_answers_in_order(self):
        service = BoundService(num_eigenvalues=30)
        queries = [
            BoundQuery(GraphSpec(family="fft", size_param=4), 4),
            BoundQuery(GraphSpec(family="fft", size_param=3), 8),
            BoundQuery(GraphSpec(family="fft", size_param=4), 16),
        ]
        answers = service.submit(queries)
        assert [a.graph for a in answers] == ["fft:4", "fft:3", "fft:4"]
        assert [a.memory_size for a in answers] == [4, 8, 16]
        for a in answers:
            assert a.bound >= 0.0
            assert a.normalization == "normalized"

    def test_matches_engine_results(self):
        from repro.core.engine import BoundEngine
        from repro.solvers.spectrum_cache import SpectrumCache

        graph = fft_graph(5)
        expected = BoundEngine(graph, num_eigenvalues=100, cache=SpectrumCache())
        service = BoundService()
        answer = service.solve(BoundQuery(GraphSpec(family="fft", size_param=5), 8))
        assert answer.raw_value == pytest.approx(
            expected.spectral(8).raw_value, rel=1e-9
        )

    def test_same_graph_shares_one_eigensolve(self):
        service = BoundService(num_eigenvalues=30)
        spec = GraphSpec(family="fft", size_param=4)
        service.submit([BoundQuery(spec, M) for M in (4, 8, 16, 32)])
        stats = service.stats()
        assert stats["cache_misses"] == 1
        assert stats["engines_cached"] == 1
        assert stats["queries_served"] == 4

    def test_unnormalized_and_parallel_queries(self):
        service = BoundService(num_eigenvalues=30)
        spec = GraphSpec(family="fft", size_param=4)
        answers = service.submit(
            [
                BoundQuery(spec, 4, normalization="unnormalized"),
                BoundQuery(spec, 4, num_processors=4),
            ]
        )
        assert answers[0].normalization == "unnormalized"
        assert answers[1].num_processors == 4

    def test_warm_store_serves_batches_without_solving(self, tmp_path):
        store_root = tmp_path / "spectra"
        spec = GraphSpec(family="fft", size_param=4)
        cold = BoundService(store=store_root, num_eigenvalues=30)
        cold.submit([BoundQuery(spec, 8)])
        assert cold.stats()["cache_misses"] == 1
        warm = BoundService(store=store_root, num_eigenvalues=30)
        warm.submit([BoundQuery(spec, 8), BoundQuery(spec, 16)])
        stats = warm.stats()
        assert stats["cache_misses"] == 0
        assert stats["store_hits"] == 1

    def test_live_graph_and_path_refs(self, tmp_path):
        graph = fft_graph(3)
        path = tmp_path / "g.npz"
        save_graph_npz(graph, path)
        service = BoundService(num_eigenvalues=20)
        answers = service.submit(
            [BoundQuery(graph, 4), BoundQuery(str(path), 4)]
        )
        assert answers[0].bound == pytest.approx(answers[1].bound)
        # Identical structure -> the path-loaded graph reuses the spectrum.
        assert service.stats()["cache_misses"] == 1

    def test_batch_dedup_solves_once_and_fans_out(self):
        service = BoundService(num_eigenvalues=30)
        spec = GraphSpec(family="fft", size_param=4)
        query = BoundQuery(spec, 8)
        answers = service.submit([query, BoundQuery(spec, 16), query, query])
        assert answers[0] is answers[2] is answers[3]
        assert answers[1].memory_size == 16
        stats = service.stats()
        assert stats["deduped"] == 2
        assert stats["queries_served"] == 4

    def test_batch_dedup_respects_query_fields(self):
        service = BoundService(num_eigenvalues=30)
        spec = GraphSpec(family="fft", size_param=3)
        answers = service.submit(
            [
                BoundQuery(spec, 8),
                BoundQuery(spec, 8, normalization="unnormalized"),
                BoundQuery(spec, 8, num_processors=2),
                BoundQuery(spec, 8, method="convex-min-cut"),
            ]
        )
        assert service.stats()["deduped"] == 0
        assert len({id(a) for a in answers}) == 4

    def test_invalid_normalization_rejected(self):
        service = BoundService(num_eigenvalues=20)
        with pytest.raises(ValueError, match="normalization"):
            service.solve(
                BoundQuery(GraphSpec(family="fft", size_param=3), 4, normalization="bogus")
            )

    def test_engine_lru_bounded(self):
        service = BoundService(num_eigenvalues=20, max_engines=2)
        for size in (2, 3, 4):
            service.solve(BoundQuery(GraphSpec(family="fft", size_param=size), 4))
        assert service.stats()["engines_cached"] == 2


class TestCLI:
    def run_cli(self, *argv):
        return main(list(argv))

    def test_sweep_twice_is_solve_free_second_time(self, tmp_path, capsys):
        """CLI half of the acceptance criterion."""
        store = tmp_path / "spectra"
        out1 = tmp_path / "run1.json"
        out2 = tmp_path / "run2.json"
        args = [
            "sweep", "--family", "fft", "--sizes", "3", "4",
            "--memory-sizes", "4", "8", "--store", str(store),
        ]
        assert self.run_cli(*args, "--json", str(out1)) == 0
        assert self.run_cli(*args, "--json", str(out2)) == 0
        run1 = json.loads(out1.read_text())
        run2 = json.loads(out2.read_text())
        assert run1["num_eigensolves"] == 2
        assert run2["num_eigensolves"] == 0
        assert run1["num_rows"] == run2["num_rows"] == 4
        assert [r["bound"] for r in run1["rows"]] == [r["bound"] for r in run2["rows"]]
        stats = SpectrumStore(store).stats()
        assert stats["solves_recorded"] == run1["num_eigensolves"]

    def test_sweep_json_to_stdout(self, tmp_path, capsys):
        assert (
            self.run_cli(
                "sweep", "--family", "fft", "--sizes", "3",
                "--memory-sizes", "4", "--store", str(tmp_path / "s"),
                "--json", "-",
            )
            == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["num_rows"] == 1

    def test_sweep_pooled(self, tmp_path, capsys):
        assert (
            self.run_cli(
                "sweep", "--family", "fft", "--sizes", "3", "4",
                "--memory-sizes", "4", "--store", str(tmp_path / "s"),
                "--processes", "2", "--json", str(tmp_path / "r.json"),
            )
            == 0
        )
        payload = json.loads((tmp_path / "r.json").read_text())
        assert payload["processes"] == 2
        assert payload["num_eigensolves"] == 2

    def test_solve_table_and_json(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        assert (
            self.run_cli(
                "solve", "--family", "fft", "--size", "4",
                "-M", "4", "8", "--store", store,
            )
            == 0
        )
        table = capsys.readouterr().out
        assert "fft:4" in table and "eigensolves: 1" in table
        assert (
            self.run_cli(
                "solve", "--family", "fft", "--size", "4",
                "-M", "4", "8", "--store", store, "--json",
            )
            == 0
        )
        answers = json.loads(capsys.readouterr().out)
        assert len(answers) == 2
        assert answers[0]["graph"] == "fft:4"

    def test_solve_from_saved_graph(self, tmp_path, capsys):
        path = tmp_path / "g.npz"
        save_graph_npz(fft_graph(3), path)
        assert (
            self.run_cli(
                "solve", "--graph", str(path), "-M", "4", "--no-store", "--json"
            )
            == 0
        )
        (answer,) = json.loads(capsys.readouterr().out)
        assert answer["num_vertices"] == 32

    def test_solve_requires_a_graph(self):
        with pytest.raises(SystemExit):
            self.run_cli("solve", "-M", "4", "--no-store")

    def test_cache_stats_list_clear(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        self.run_cli(
            "sweep", "--family", "fft", "--sizes", "3",
            "--memory-sizes", "4", "--store", store,
        )
        capsys.readouterr()
        assert self.run_cli("cache", "stats", "--store", store) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["num_entries"] == 1 and stats["solves_recorded"] == 1
        assert self.run_cli("cache", "list", "--store", store) == 0
        assert "h000032" in capsys.readouterr().out
        assert self.run_cli("cache", "clear", "--store", store) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_cache_needs_store(self):
        with pytest.raises(SystemExit):
            self.run_cli("cache", "stats", "--no-store")

    def test_sweep_solver_and_dtype_flags(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert (
            self.run_cli(
                "sweep", "--family", "fft", "--sizes", "3", "4",
                "--memory-sizes", "4", "--store", str(tmp_path / "s"),
                "--solver", "lobpcg", "--dtype", "float32", "--json", str(out),
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["num_eigensolves"] == 2
        assert len(payload["tasks"]) == 2
        for record in payload["tasks"]:
            assert record["backend"] == "lobpcg"
            assert record["dtype"] == "float32"
            assert record["solve_seconds"] >= 0.0
        # dtype/backend flow into the store key: a float64 run re-solves.
        out2 = tmp_path / "run2.json"
        assert (
            self.run_cli(
                "sweep", "--family", "fft", "--sizes", "3", "4",
                "--memory-sizes", "4", "--store", str(tmp_path / "s"),
                "--json", str(out2),
            )
            == 0
        )
        assert json.loads(out2.read_text())["num_eigensolves"] == 2

    def test_solve_solver_flag(self, tmp_path, capsys):
        assert (
            self.run_cli(
                "solve", "--family", "fft", "--size", "3", "-M", "4",
                "--no-store", "--solver", "lanczos", "--json",
            )
            == 0
        )
        (answer,) = json.loads(capsys.readouterr().out)
        assert answer["bound"] >= 0.0

    def test_cache_verify_and_filtered_clear(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        self.run_cli(
            "sweep", "--family", "fft", "--sizes", "3", "4",
            "--memory-sizes", "4", "--store", store,
        )
        capsys.readouterr()
        assert self.run_cli("cache", "verify", "--store", store) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["entries_checked"] == 2
        # Break a blob, verify fails, --fix repairs.
        blobs = list((tmp_path / "s" / "blobs").glob("*.npz"))
        blobs[0].write_bytes(b"garbage")
        assert self.run_cli("cache", "verify", "--store", store) == 1
        capsys.readouterr()
        assert self.run_cli("cache", "verify", "--store", store, "--fix") == 0
        capsys.readouterr()
        assert self.run_cli("cache", "verify", "--store", store) == 0
        assert json.loads(capsys.readouterr().out)["ok"]
        # Filtered clear by family lineage.
        assert self.run_cli("cache", "clear", "--store", store, "--family", "nope") == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert self.run_cli("cache", "clear", "--store", store, "--family", "fft") == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_store_env_var_respected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SPECTRUM_STORE", str(tmp_path / "env-store"))
        self.run_cli("sweep", "--family", "fft", "--sizes", "3", "--memory-sizes", "4")
        assert (tmp_path / "env-store" / "index.json").exists()


class TestConvexMinCutCLI:
    def run_cli(self, *argv):
        return main(list(argv))

    def test_sweep_convex_cold_then_warm_is_flow_free(self, tmp_path):
        store = tmp_path / "spectra"
        out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
        args = [
            "sweep", "--family", "fft", "--sizes", "3",
            "--memory-sizes", "4", "--methods", "spectral", "convex-min-cut",
            "--store", str(store),
        ]
        assert self.run_cli(*args, "--json", str(out1)) == 0
        assert self.run_cli(*args, "--json", str(out2)) == 0
        run1 = json.loads(out1.read_text())
        run2 = json.loads(out2.read_text())
        assert run1["num_flow_calls"] > 0
        assert run2["num_flow_calls"] == 0
        assert run2["num_eigensolves"] == 0
        assert [r["bound"] for r in run1["rows"]] == [r["bound"] for r in run2["rows"]]

    def test_sweep_mincut_backend_flag_in_task_records(self, tmp_path):
        out = tmp_path / "run.json"
        assert (
            self.run_cli(
                "sweep", "--family", "fft", "--sizes", "3",
                "--memory-sizes", "4", "--methods", "convex-min-cut",
                "--mincut-backend", "array-dinic",
                "--store", str(tmp_path / "s"), "--json", str(out),
            )
            == 0
        )
        payload = json.loads(out.read_text())
        (record,) = payload["tasks"]
        assert record["flow_backend"] == "array-dinic"
        assert record["flow_calls"] > 0
        assert record["cut_seconds"] >= 0.0

    def test_solve_method_convex_min_cut(self, tmp_path, capsys):
        assert (
            self.run_cli(
                "solve", "--family", "fft", "--size", "4", "-M", "3", "8",
                "--method", "convex-min-cut", "--store", str(tmp_path / "s"),
                "--json",
            )
            == 0
        )
        answers = json.loads(capsys.readouterr().out)
        assert len(answers) == 2
        assert answers[0]["bound"] >= answers[1]["bound"] >= 0.0
        assert answers[0]["graph"] == "fft:4"

    def test_cache_stats_includes_cut_section(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        self.run_cli(
            "sweep", "--family", "fft", "--sizes", "3", "--memory-sizes", "4",
            "--methods", "convex-min-cut", "--store", store,
        )
        capsys.readouterr()
        assert self.run_cli("cache", "stats", "--store", store) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cuts"]["num_graphs"] == 1
        assert stats["cuts"]["flows_recorded"] > 0

    def test_cache_clear_removes_cut_tables_too(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        self.run_cli(
            "sweep", "--family", "fft", "--sizes", "3", "--memory-sizes", "4",
            "--methods", "spectral", "convex-min-cut", "--store", store,
        )
        capsys.readouterr()
        assert self.run_cli("cache", "clear", "--store", store) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert self.run_cli("cache", "stats", "--store", store) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["num_entries"] == 0 and stats["cuts"]["num_graphs"] == 0

    def test_cache_verify_covers_cut_tables(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        self.run_cli(
            "sweep", "--family", "fft", "--sizes", "3", "--memory-sizes", "4",
            "--methods", "convex-min-cut", "--store", store,
        )
        capsys.readouterr()
        assert self.run_cli("cache", "verify", "--store", store) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["cuts"]["entries_checked"] == 1
        # Corrupt the cut blob: verify fails, --fix repairs.
        (blob,) = list((tmp_path / "s" / "cuts").glob("*.npz"))
        blob.write_bytes(b"garbage")
        assert self.run_cli("cache", "verify", "--store", store) == 1
        capsys.readouterr()
        assert self.run_cli("cache", "verify", "--store", store, "--fix") == 0
        capsys.readouterr()
        assert self.run_cli("cache", "verify", "--store", store) == 0
        assert json.loads(capsys.readouterr().out)["ok"]

    def test_cache_clear_family_filter_covers_cut_tables(self, tmp_path, capsys):
        """A family clear must force a genuinely cold re-run: both the
        spectra and the cut tables of that lineage go."""
        store = str(tmp_path / "s")
        out = tmp_path / "rerun.json"
        args = [
            "sweep", "--family", "fft", "--sizes", "3", "--memory-sizes", "4",
            "--methods", "spectral", "convex-min-cut", "--store", store,
        ]
        self.run_cli(*args)
        capsys.readouterr()
        assert self.run_cli("cache", "clear", "--store", store, "--family", "fft") == 0
        assert "removed 2 entries" in capsys.readouterr().out
        self.run_cli(*args, "--json", str(out))
        rerun = json.loads(out.read_text())
        assert rerun["num_eigensolves"] == 1
        assert rerun["num_flow_calls"] > 0


class TestBoundServiceConvex:
    def test_convex_query_matches_direct_bound(self):
        from repro.baselines.convex_mincut import convex_min_cut_bound
        from repro.graphs.generators import fft_graph as _fft

        service = BoundService()
        answer = service.solve(
            BoundQuery(GraphSpec(family="fft", size_param=4), 3, method="convex-min-cut")
        )
        direct = convex_min_cut_bound(_fft(4), M=3)
        assert answer.bound == direct.value
        assert answer.normalization == "-"

    def test_repeat_convex_queries_share_one_engine(self):
        service = BoundService()
        spec = GraphSpec(family="fft", size_param=3)
        service.submit(
            [BoundQuery(spec, M, method="convex-min-cut") for M in (2, 4, 8)]
        )
        stats = service.stats()
        assert stats["mincut_engines_cached"] == 1
        first_flows = stats["flow_calls"]
        assert first_flows > 0
        service.solve(BoundQuery(spec, 16, method="convex-min-cut"))
        assert service.stats()["flow_calls"] == first_flows  # cached cuts

    def test_warm_store_convex_service_is_flow_free(self, tmp_path):
        store_root = tmp_path / "spectra"
        spec = GraphSpec(family="fft", size_param=3)
        cold = BoundService(store=store_root)
        cold.solve(BoundQuery(spec, 4, method="convex-min-cut"))
        assert cold.stats()["flow_calls"] > 0
        warm = BoundService(store=store_root)
        warm.solve(BoundQuery(spec, 4, method="convex-min-cut"))
        assert warm.stats()["flow_calls"] == 0

    def test_unknown_method_rejected(self):
        service = BoundService()
        with pytest.raises(ValueError, match="method"):
            service.solve(
                BoundQuery(GraphSpec(family="fft", size_param=3), 4, method="bogus")
            )

    def test_flow_calls_survive_engine_eviction(self):
        service = BoundService(max_engines=1)
        for size in (2, 3, 4):
            service.solve(
                BoundQuery(GraphSpec(family="fft", size_param=size), 2,
                           method="convex-min-cut")
            )
        stats = service.stats()
        assert stats["mincut_engines_cached"] == 1  # two engines evicted
        # The cumulative counter keeps the evicted engines' work.
        total_vertices_bound = sum((l + 1) * 2 ** l for l in (2, 3, 4))
        assert 0 < stats["flow_calls"] <= total_vertices_bound
