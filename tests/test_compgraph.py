"""Unit tests for the ComputationGraph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.compgraph import ComputationGraph


def build_diamond() -> ComputationGraph:
    """0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3."""
    g = ComputationGraph(4)
    g.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = ComputationGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.sources() == []
        assert g.sinks() == []

    def test_preallocated_vertices(self):
        g = ComputationGraph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_add_vertex_returns_sequential_ids(self):
        g = ComputationGraph()
        assert [g.add_vertex() for _ in range(4)] == [0, 1, 2, 3]

    def test_add_vertices_bulk(self):
        g = ComputationGraph()
        ids = g.add_vertices(3, op="input")
        assert ids == [0, 1, 2]
        assert all(g.op(v) == "input" for v in ids)

    def test_add_edge_and_query(self):
        g = build_diamond()
        assert g.num_edges == 4
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert set(g.successors(0)) == {1, 2}
        assert set(g.predecessors(3)) == {1, 2}

    def test_duplicate_edge_rejected(self):
        g = ComputationGraph(2)
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = ComputationGraph(2)
        with pytest.raises(ValueError, match="self loop"):
            g.add_edge(1, 1)

    def test_out_of_range_vertex_rejected(self):
        g = ComputationGraph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 2)
        with pytest.raises(ValueError):
            g.in_degree(5)

    def test_non_integer_vertex_rejected(self):
        g = ComputationGraph(2)
        with pytest.raises(TypeError):
            g.add_edge(0, "a")  # type: ignore[arg-type]

    def test_negative_prealloc_rejected(self):
        with pytest.raises(ValueError):
            ComputationGraph(-1)

    def test_from_edges(self):
        g = ComputationGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2


class TestDegrees:
    def test_degrees_diamond(self):
        g = build_diamond()
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 0
        assert g.in_degree(3) == 2
        assert g.degree(1) == 2
        assert g.max_out_degree == 2
        assert g.max_in_degree == 2

    def test_degree_vectors(self):
        g = build_diamond()
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 1, 0])
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 1, 2])
        np.testing.assert_array_equal(g.degrees(), [2, 2, 2, 2])

    def test_empty_graph_max_degrees(self):
        g = ComputationGraph()
        assert g.max_out_degree == 0
        assert g.max_in_degree == 0

    def test_sources_and_sinks(self):
        g = build_diamond()
        assert g.sources() == [0]
        assert g.sinks() == [3]


class TestMetadata:
    def test_labels_and_ops(self):
        g = ComputationGraph()
        v = g.add_vertex(label="x", op="input")
        assert g.label(v) == "x"
        assert g.op(v) == "input"
        g.set_label(v, "y")
        g.set_op(v, "const")
        assert g.label(v) == "y"
        assert g.op(v) == "const"

    def test_unlabeled_vertex_returns_none(self):
        g = ComputationGraph(1)
        assert g.label(0) is None
        assert g.op(0) is None

    def test_vertices_with_op(self):
        g = ComputationGraph()
        a = g.add_vertex(op="input")
        g.add_vertex(op="mul")
        b = g.add_vertex(op="input")
        assert g.vertices_with_op("input") == [a, b]


class TestStructure:
    def test_topological_order_valid(self):
        g = build_diamond()
        order = g.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_cycle_detected(self):
        g = ComputationGraph(3)
        g.add_edges([(0, 1), (1, 2), (2, 0)])
        assert not g.is_acyclic()
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_accepts_dag(self):
        build_diamond().validate()

    def test_ancestors_descendants(self):
        g = build_diamond()
        assert g.ancestors(3) == {0, 1, 2}
        assert g.descendants(0) == {1, 2, 3}
        assert g.ancestors(0) == set()
        assert g.descendants(3) == set()

    def test_weak_connectivity(self):
        g = build_diamond()
        assert g.is_weakly_connected()
        g2 = ComputationGraph(3)
        g2.add_edge(0, 1)
        assert not g2.is_weakly_connected()
        assert g2.weakly_connected_components() == [[0, 1], [2]]

    def test_empty_and_single_vertex_connected(self):
        assert ComputationGraph().is_weakly_connected()
        assert ComputationGraph(1).is_weakly_connected()

    def test_longest_path(self):
        g = build_diamond()
        assert g.longest_path_length() == 2
        assert ComputationGraph(3).longest_path_length() == 0
        assert ComputationGraph().longest_path_length() == 0


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = build_diamond()
        h = g.copy()
        h.add_vertex()
        assert h.num_vertices == 5
        assert g.num_vertices == 4
        assert h == ComputationGraph.from_edges(5, g.edges()) or h.num_edges == g.num_edges

    def test_equality_by_structure(self):
        assert build_diamond() == build_diamond()
        other = ComputationGraph(4)
        other.add_edge(0, 1)
        assert build_diamond() != other

    def test_subgraph(self):
        g = build_diamond()
        sub, mapping = g.subgraph([0, 1, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # (0,1) and (1,3) survive
        assert set(mapping.keys()) == {0, 1, 3}

    def test_relabeled_preserves_structure(self):
        g = build_diamond()
        perm = [3, 2, 1, 0]
        h = g.relabeled(perm)
        assert h.num_edges == g.num_edges
        assert h.has_edge(3, 2)  # image of (0, 1)
        with pytest.raises(ValueError):
            g.relabeled([0, 0, 1, 2])

    def test_reversed(self):
        g = build_diamond()
        r = g.reversed()
        assert r.has_edge(1, 0)
        assert r.sources() == [3]
        assert r.sinks() == [0]

    def test_networkx_round_trip(self):
        g = build_diamond()
        g.set_label(0, "src")
        nx_graph = g.to_networkx()
        back = ComputationGraph.from_networkx(nx_graph)
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
        assert sorted(back.edges()) == sorted(g.edges())
