"""Cross-checks between traced programs and the direct graph generators.

The paper's evaluation extracts graphs by tracing Python implementations
(§6.1); our generators build the same graphs directly.  Tracing the reference
implementations must therefore reproduce the generators' vertex and edge
counts (and degree structure), which is what these tests assert.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import spectral_bound
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    inner_product_graph,
    naive_matmul_graph,
)
from repro.trace.programs import (
    traced_bellman_held_karp,
    traced_fft,
    traced_inner_product,
    traced_naive_matmul,
    traced_polynomial_evaluation,
)


class TestTracedMatchesGenerators:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_inner_product(self, n):
        traced = traced_inner_product(n)
        direct = inner_product_graph(n)
        assert traced.num_vertices == direct.num_vertices
        assert traced.num_edges == direct.num_edges
        assert traced.max_in_degree == direct.max_in_degree

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_naive_matmul(self, n):
        traced = traced_naive_matmul(n)
        direct = naive_matmul_graph(n, reduction="chain")
        assert traced.num_vertices == direct.num_vertices
        assert traced.num_edges == direct.num_edges
        assert traced.max_out_degree == direct.max_out_degree

    @pytest.mark.parametrize("levels", [1, 2, 3, 4])
    def test_fft(self, levels):
        traced = traced_fft(levels)
        direct = fft_graph(levels)
        assert traced.num_vertices == direct.num_vertices
        assert traced.num_edges == direct.num_edges
        assert traced.max_in_degree == direct.max_in_degree == (2 if levels else 0)
        assert len(traced.sources()) == len(direct.sources())
        assert len(traced.sinks()) == len(direct.sinks())

    @pytest.mark.parametrize("cities", [2, 3, 4, 5])
    def test_bellman_held_karp(self, cities):
        traced = traced_bellman_held_karp(cities)
        direct = bellman_held_karp_graph(cities)
        assert traced.num_vertices == direct.num_vertices
        assert traced.num_edges == direct.num_edges
        assert traced.max_in_degree == direct.max_in_degree
        assert traced.max_out_degree == direct.max_out_degree


class TestTracedGraphsAreValid:
    def test_all_traced_graphs_acyclic(self):
        for graph in (
            traced_inner_product(3),
            traced_naive_matmul(2),
            traced_fft(3),
            traced_bellman_held_karp(3),
            traced_polynomial_evaluation([1.0, 2.0, 3.0]),
        ):
            graph.validate()

    def test_polynomial_is_low_io(self):
        """Horner evaluation is nearly a chain: the spectral bound is trivial."""
        graph = traced_polynomial_evaluation([1.0] * 20)
        assert spectral_bound(graph, M=4).value == 0.0

    def test_polynomial_rejects_empty(self):
        with pytest.raises(ValueError):
            traced_polynomial_evaluation([])

    def test_traced_fft_bound_matches_generator_bound(self):
        """Same graph (up to isomorphism) => same spectral bound."""
        traced = traced_fft(4)
        direct = fft_graph(4)
        a = spectral_bound(traced, M=4, num_eigenvalues=30)
        b = spectral_bound(direct, M=4, num_eigenvalues=30)
        assert a.raw_value == pytest.approx(b.raw_value, abs=1e-6)
