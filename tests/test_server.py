"""Tests for the ``repro.server`` HTTP serving layer.

Three layers are covered: the pure pieces (protocol codec, metrics
registry, admission controller, coalescer) without any sockets; a live
threaded server hammered from many client threads, checked for exact
parity with direct :class:`BoundService` calls; and the serving policies
driven deterministically through a blocking stub service (coalescing must
fire, overload must 429 without corrupting state).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.graphs.generators import fft_graph, hypercube_graph
from repro.runtime.cli import build_parser, build_server_from_args
from repro.runtime.families import GraphSpec
from repro.runtime.service import BoundAnswer, BoundQuery, BoundService
from repro.server.client import BoundsClient, ServerError, parse_metric
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import (
    MAX_QUERIES_PER_REQUEST,
    PROTOCOL_VERSION,
    GraphRegistry,
    ProtocolError,
    decode_answers,
    decode_bounds_request,
    encode_answers,
    encode_bounds_request,
)
from repro.server.runner import (
    AdmissionController,
    BoundServer,
    FleetConfig,
    QueryCoalescer,
    ServerFleet,
    ServerOverloadedError,
    ShardRing,
)

NUM_EIGENVALUES = 20

#: The mixed workload the live-server tests replay: both normalisations,
#: the parallel bound, the convex min-cut baseline, two graph families.
MIXED_QUERIES = [
    BoundQuery(GraphSpec(family="fft", size_param=3), 2),
    BoundQuery(GraphSpec(family="fft", size_param=4), 4),
    BoundQuery(GraphSpec(family="fft", size_param=3), 2, normalization="unnormalized"),
    BoundQuery(GraphSpec(family="fft", size_param=3), 4, num_processors=2),
    BoundQuery(GraphSpec(family="hypercube", size_param=3), 2),
    BoundQuery(GraphSpec(family="fft", size_param=3), 2, method="convex-min-cut"),
    BoundQuery(GraphSpec(family="fft", size_param=4), 4, method="convex-min-cut"),
]


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


def direct_answers(queries):
    """What a fresh, cache-cold BoundService answers for ``queries``."""
    return BoundService(num_eigenvalues=NUM_EIGENVALUES).submit(queries)


def assert_same_bounds(got, expected):
    assert len(got) == len(expected)
    for answer, reference in zip(got, expected):
        assert answer.graph == reference.graph
        assert answer.bound == reference.bound
        assert answer.raw_value == reference.raw_value
        assert answer.best_k == reference.best_k
        assert answer.num_vertices == reference.num_vertices
        assert answer.normalization == reference.normalization


@pytest.fixture
def live_server():
    service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
    server = BoundServer(service, port=0).start()
    yield server
    server.close()


class TestProtocol:
    def test_family_request_roundtrip(self):
        queries = [
            BoundQuery(GraphSpec(family="fft", size_param=4), 8),
            BoundQuery(
                GraphSpec(family="fft", size_param=4), 8,
                normalization="unnormalized", num_processors=2, k=3,
                method="spectral",
            ),
        ]
        payload = encode_bounds_request(queries)
        assert payload["version"] == PROTOCOL_VERSION
        decoded = decode_bounds_request(payload)
        assert [item.query for item in decoded] == queries
        # Identical queries -> identical coalescing keys; different -> not.
        assert decoded[0].key != decoded[1].key
        again = decode_bounds_request(encode_bounds_request([queries[0]] * 2))
        assert again[0].key == again[1].key

    def test_inline_graph_registers_and_fingerprint_resolves(self):
        registry = GraphRegistry()
        graph = fft_graph(3)
        payload = encode_bounds_request([BoundQuery(graph, 4)])
        decoded = decode_bounds_request(payload, registry)[0]
        assert decoded.fingerprint == graph.fingerprint()
        assert decoded.query.graph.num_vertices == graph.num_vertices
        by_handle = decode_bounds_request(
            {"queries": [{"graph": {"fingerprint": graph.fingerprint()},
                          "memory_size": 4}]},
            registry,
        )[0]
        # Same canonical instance -> the service reuses one warm engine.
        assert by_handle.query.graph is decoded.query.graph
        assert by_handle.key == decoded.key

    def test_unknown_fingerprint_is_404(self):
        with pytest.raises(ProtocolError) as info:
            decode_bounds_request(
                {"queries": [{"graph": {"fingerprint": "feed"}, "memory_size": 4}]},
                GraphRegistry(),
            )
        assert info.value.status == 404
        assert info.value.code == "unknown-graph"

    def test_registry_is_a_bounded_lru(self):
        registry = GraphRegistry(max_graphs=2)
        graphs = [fft_graph(2), fft_graph(3), hypercube_graph(2)]
        for graph in graphs:
            registry.register(graph)
        assert len(registry) == 2
        assert registry.get(graphs[0].fingerprint()) is None
        assert registry.get(graphs[2].fingerprint()) is not None

    @pytest.mark.parametrize(
        "payload, code",
        [
            ([], "bad-request"),
            ({"version": 99, "queries": []}, "unsupported-version"),
            ({"queries": []}, "bad-request"),
            ({"queries": [], "surprise": 1}, "bad-request"),
            ({"queries": [{"memory_size": 4}]}, "invalid-query"),
            ({"queries": [{"graph": {"family": "fft", "size": 3}}]}, "invalid-query"),
            ({"queries": [{"graph": {"family": "fft", "size": 3},
                           "memory_size": 4, "memory-size": 4}]}, "invalid-query"),
            ({"queries": [{"graph": {"family": "fft", "size": 3},
                           "memory_size": -1}]}, "invalid-query"),
            ({"queries": [{"graph": {"family": "fft", "size": 3},
                           "memory_size": True}]}, "invalid-query"),
            ({"queries": [{"graph": {"family": "nope", "size": 3},
                           "memory_size": 4}]}, "unknown-family"),
            ({"queries": [{"graph": {"family": "fft", "size": 3},
                           "memory_size": 4,
                           "normalization": "sideways"}]}, "invalid-query"),
            ({"queries": [{"graph": {"family": "fft", "size": 3},
                           "memory_size": 4,
                           "method": "magic"}]}, "invalid-query"),
            ({"queries": [{"graph": {"path": "/etc/passwd"},
                           "memory_size": 4}]}, "invalid-graph-ref"),
            ({"queries": [{"graph": {"num_vertices": 2, "edges": [[0, 1, 2]]},
                           "memory_size": 4}]}, "invalid-graph-ref"),
            ({"queries": [{"graph": {"num_vertices": 2, "edges": [[0, 2**63]]},
                           "memory_size": 4}]}, "invalid-graph-ref"),
            ({"queries": [{"graph": {"num_vertices": 10**9, "edges": []},
                           "memory_size": 4}]}, "graph-too-large"),
        ],
    )
    def test_schema_violations(self, payload, code):
        with pytest.raises(ProtocolError) as info:
            decode_bounds_request(payload, GraphRegistry())
        assert info.value.code == code

    def test_batch_ceiling(self):
        query = {"graph": {"family": "fft", "size": 3}, "memory_size": 4}
        with pytest.raises(ProtocolError) as info:
            decode_bounds_request(
                {"queries": [query] * (MAX_QUERIES_PER_REQUEST + 1)}
            )
        assert info.value.status == 413

    def test_answers_roundtrip(self):
        answers = direct_answers(MIXED_QUERIES[:2])
        payload = encode_answers(answers, ["ab12", None])
        assert payload["answers"][0]["fingerprint"] == "ab12"
        assert "fingerprint" not in payload["answers"][1]
        assert decode_answers(payload) == answers

    def test_path_specs_are_local_only(self):
        with pytest.raises(ProtocolError, match="local-only"):
            encode_bounds_request([BoundQuery(GraphSpec(path="g.npz"), 4)])


class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Hits.", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.total() == 3
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="nope")

    def test_callback_counter_tracks_source(self):
        registry = MetricsRegistry()
        box = {"n": 0}
        counter = registry.counter("live_total", "Live.", callback=lambda: box["n"])
        assert counter.total() == 0
        box["n"] = 7
        assert counter.total() == 7
        assert "live_total 7" in registry.render()
        with pytest.raises(ValueError):
            counter.inc()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.1, 0.5, 3.0):
            histogram.observe(value)
        text = registry.render()
        assert 'latency_seconds_bucket{le="0.1"} 2' in text  # le is inclusive
        assert 'latency_seconds_bucket{le="1"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text
        assert histogram.count() == 4

    def test_render_and_parse_agree(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "Reqs.", labelnames=("status",))
        counter.inc(3, status="200")
        counter.inc(1, status="429")
        assert parse_metric(registry.render(), "reqs_total") == 4
        with pytest.raises(KeyError):
            parse_metric(registry.render(), "absent_total")

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.")
        assert registry.counter("a_total", "A.") is registry.get("a_total")
        with pytest.raises(ValueError):
            registry.counter("a_total", "A.", labelnames=("x",))
        with pytest.raises(ValueError):
            registry.gauge("a_total", "A.")


class TestAdmissionController:
    def test_fast_fail_beyond_queue(self):
        admission = AdmissionController(max_in_flight=1, max_queue=0)
        admission.acquire()
        with pytest.raises(ServerOverloadedError) as info:
            admission.acquire()
        assert info.value.retry_after_seconds == admission.retry_after_seconds
        assert admission.rejected == 1
        admission.release()
        admission.acquire()  # slot free again
        admission.release()
        assert admission.stats()["admitted"] == 2

    def test_fresh_arrivals_never_barge_past_queued_waiters(self):
        # A released slot is handed straight to a queued waiter; a request
        # arriving in that window must queue (or shed), never jump ahead.
        admission = AdmissionController(max_in_flight=1, max_queue=2)
        admission.acquire()
        events: list = []

        def enter(name: str):
            admission.acquire()
            events.append(name)

        waiter = threading.Thread(target=enter, args=("waiter",), daemon=True)
        waiter.start()
        wait_until(lambda: admission.queued == 1)
        admission.release()  # slot handed to the waiter, never visibly free
        barger = threading.Thread(target=enter, args=("barger",), daemon=True)
        barger.start()
        waiter.join(timeout=5)
        wait_until(lambda: len(events) >= 1)
        assert events[0] == "waiter"
        admission.release()  # the waiter's slot -> the barger
        barger.join(timeout=5)
        assert events == ["waiter", "barger"]
        admission.release()
        assert admission.in_flight == 0 and admission.queued == 0

    def test_queued_request_waits_for_slot(self):
        admission = AdmissionController(max_in_flight=1, max_queue=1)
        admission.acquire()
        acquired = threading.Event()

        def wait_for_slot():
            admission.acquire()
            acquired.set()

        thread = threading.Thread(target=wait_for_slot, daemon=True)
        thread.start()
        wait_until(lambda: admission.queued == 1)
        assert not acquired.is_set()
        admission.release()
        wait_until(acquired.is_set)
        admission.release()
        thread.join(timeout=5)
        assert admission.queued == 0 and admission.in_flight == 0


class TestQueryCoalescer:
    def test_follower_shares_leader_result(self):
        coalescer = QueryCoalescer()
        ticket, is_leader = coalescer.claim(("k",))
        assert is_leader
        follower, follower_leads = coalescer.claim(("k",))
        assert follower is ticket and not follower_leads
        coalescer.resolve(ticket, "answer")
        assert follower.wait(1.0) == "answer"
        assert coalescer.stats() == {"leaders": 1, "coalesced": 1, "in_flight": 0}

    def test_failure_propagates_and_key_clears(self):
        coalescer = QueryCoalescer()
        ticket, _ = coalescer.claim(("k",))
        follower, _ = coalescer.claim(("k",))
        coalescer.fail(ticket, ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            follower.wait(1.0)
        _, is_leader = coalescer.claim(("k",))
        assert is_leader  # resolved keys leave the in-flight table


class TestEndpoints:
    def test_healthz(self, live_server):
        health = BoundsClient(live_server.url).health()
        assert health["status"] == "ok"
        assert health["protocol_version"] == PROTOCOL_VERSION

    def test_unknown_path_and_wrong_method(self, live_server):
        client = BoundsClient(live_server.url)
        with pytest.raises(ServerError) as info:
            client._request("/v2/bounds", {"queries": []})
        assert info.value.status == 404 and info.value.code == "not-found"
        with pytest.raises(ServerError) as info:
            client._request("/v1/bounds")  # GET
        assert info.value.status == 405 and info.value.code == "method-not-allowed"

    def test_bounds_match_direct_service(self, live_server):
        answers = BoundsClient(live_server.url).bounds(MIXED_QUERIES)
        assert_same_bounds(answers, direct_answers(MIXED_QUERIES))

    def test_inline_then_fingerprint_requery(self, live_server):
        client = BoundsClient(live_server.url)
        graph = fft_graph(3)
        [inline_answer] = client.bounds([BoundQuery(graph, 2)])
        raw = client.bounds_raw(
            {"queries": [{"graph": {"fingerprint": graph.fingerprint()},
                          "memory_size": 2}]}
        )
        assert raw["answers"][0]["fingerprint"] == graph.fingerprint()
        assert raw["answers"][0]["bound"] == inline_answer.bound
        [direct] = direct_answers([BoundQuery(fft_graph(3), 2)])
        assert inline_answer.bound == direct.bound
        # One engine, one spectrum: the re-query hit the registered graph.
        assert live_server.service.counters()["cache_misses"] == 1

    def test_non_json_body_is_a_structured_400(self, live_server):
        import http.client

        conn = http.client.HTTPConnection(
            live_server.host, live_server.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/v1/bounds", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            error = BoundsClient._server_error(
                response.status, dict(response.getheaders()), raw
            )
        finally:
            conn.close()
        assert error.status == 400 and error.code == "malformed-json"

    def test_negative_content_length_is_rejected_not_hung(self, live_server):
        import socket

        with socket.create_connection(
            (live_server.host, live_server.port), timeout=5
        ) as sock:
            sock.sendall(
                b"POST /v1/bounds HTTP/1.1\r\nHost: test\r\n"
                b"Content-Length: -1\r\n\r\n"
            )
            status_line = sock.recv(4096).split(b"\r\n", 1)[0]
        assert b"400" in status_line  # not a handler thread parked on read(-1)

    def test_underfed_body_times_out_and_frees_the_thread(self, monkeypatch):
        # A declared-but-never-sent body (slowloris) must not park the
        # handler thread forever: the socket timeout turns the starved
        # read into a 503 (or a dropped connection) and the server lives.
        import socket

        from repro.server import runner as runner_module

        monkeypatch.setattr(runner_module._QuietRequestHandler, "timeout", 0.5)
        service = BlockingService()
        service.release.set()
        with BoundServer(service, port=0) as server:
            server.start()
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/bounds HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 100000\r\n\r\n{\"queries\""
                )
                response = sock.recv(4096)  # raises on client timeout = bug
            assert response == b"" or b"503" in response.split(b"\r\n", 1)[0]
            assert BoundsClient(server.url).health()["status"] == "ok"

    def test_unknown_http_verbs_do_not_mint_metric_labels(self, live_server):
        import socket

        with socket.create_connection(
            (live_server.host, live_server.port), timeout=5
        ) as sock:
            sock.sendall(b"EVILVERB /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            sock.recv(4096)
        text = BoundsClient(live_server.url).metrics_text()
        assert "EVILVERB" not in text
        assert 'method="other"' in text

    def test_malformed_payloads_are_structured_400s(self, live_server):
        client = BoundsClient(live_server.url)
        for payload in ({}, {"queries": "x"}, {"queries": [0]}):
            with pytest.raises(ServerError) as info:
                client.bounds_raw(payload)
            assert info.value.status == 400

    def test_service_value_errors_map_to_400(self, live_server):
        client = BoundsClient(live_server.url)
        with pytest.raises(ServerError) as info:
            client.bounds(
                [BoundQuery(GraphSpec(family="fft", size_param=3), 4,
                            normalization="sideways")]
            )
        assert info.value.status == 400 and info.value.code == "invalid-query"
        # The failure corrupted nothing: the same connection keeps serving.
        assert client.bounds(MIXED_QUERIES[:1])[0].graph == "fft:3"

    def test_rejected_values_never_reach_metric_labels(self, live_server):
        # method/normalization label repro_queries_total; unvalidated
        # client strings would grow the label cardinality without bound.
        client = BoundsClient(live_server.url)
        for field, value in (("normalization", "garbage-1"), ("method", "garbage-2")):
            with pytest.raises(ServerError):
                client.bounds_raw(
                    {"queries": [{"graph": {"family": "fft", "size": 3},
                                  "memory_size": 4, field: value}]}
                )
        assert "garbage" not in client.metrics_text()

    def test_stats_endpoint_shape(self, live_server):
        client = BoundsClient(live_server.url)
        client.bounds(MIXED_QUERIES[:2])
        stats = client.stats()
        assert stats["version"] == PROTOCOL_VERSION
        assert stats["service"]["queries_served"] == 2
        assert stats["admission"]["admitted"] >= 1
        assert stats["coalescing"]["leaders"] >= 2
        assert stats["metrics"]["repro_http_requests_total"] >= 1

    def test_metrics_endpoint(self, live_server):
        client = BoundsClient(live_server.url)
        client.bounds(MIXED_QUERIES)
        text = client.metrics_text()
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert parse_metric(text, "repro_eigensolves_total") > 0
        assert parse_metric(text, "repro_flow_calls_total") > 0
        assert parse_metric(text, "repro_queries_total") == len(MIXED_QUERIES)
        assert parse_metric(client.metrics_text(), "repro_http_requests_total") >= 2


class TestConcurrentServing:
    THREADS = 8
    ROUNDS = 3

    def test_hammer_matches_direct_answers(self, live_server):
        expected = direct_answers(MIXED_QUERIES)
        client = BoundsClient(live_server.url)
        results: dict = {}
        errors: list = []

        def hammer(thread_index: int):
            try:
                for round_index in range(self.ROUNDS):
                    answers = client.bounds(MIXED_QUERIES)
                    results[(thread_index, round_index)] = answers
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(index,), daemon=True)
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == self.THREADS * self.ROUNDS
        for answers in results.values():
            assert_same_bounds(answers, expected)
        stats = live_server.service.counters()
        assert stats["queries_served"] >= len(MIXED_QUERIES)
        # However the herd interleaved, coalescing + the spectrum cache keep
        # eigensolves near the 4 distinct (graph, normalization) pairs.  One
        # duplicate solve is possible when two *different* query keys needing
        # the same spectrum (fft:3 at M=2 and at M=4/p=2) race their cold
        # cache misses, so the hard ceiling is 5 — never the 4 * THREADS *
        # ROUNDS an uncoalesced, uncached server would pay.
        assert stats["cache_misses"] <= 5
        metrics = BoundsClient(live_server.url).metrics_text()
        assert parse_metric(metrics, "repro_eigensolves_total") <= 5
        served = self.THREADS * self.ROUNDS * len(MIXED_QUERIES)
        assert parse_metric(metrics, "repro_queries_total") == served

    def test_warm_store_serves_http_with_zero_solves(self, tmp_path):
        store = tmp_path / "spectra"
        queries = MIXED_QUERIES
        cold_service = BoundService(store=store, num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(cold_service, port=0) as server:
            server.start()
            cold = BoundsClient(server.url).bounds(queries)
        warm_service = BoundService(store=store, num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(warm_service, port=0) as server:
            server.start()
            client = BoundsClient(server.url)
            warm = client.bounds(queries)
            assert client.metric("repro_eigensolves_total") == 0
            assert client.metric("repro_flow_calls_total") == 0
            assert client.metric("repro_store_hits_total") > 0
        assert_same_bounds(warm, cold)


def make_answer(query: BoundQuery, marker: float = 1.0) -> BoundAnswer:
    return BoundAnswer(
        graph="stub",
        memory_size=int(query.memory_size),
        num_processors=int(query.num_processors),
        normalization=query.normalization,
        bound=marker,
        raw_value=marker,
        best_k=None,
        num_vertices=0,
        elapsed_seconds=0.0,
        eig_elapsed_seconds=0.0,
    )


class BlockingService:
    """A BoundService stand-in whose submit() blocks until released.

    Lets the tests hold a solve "in flight" for as long as they need to
    arrange coalescing and overload scenarios deterministically.
    """

    def __init__(self, fail_with: Exception = None) -> None:
        self.release = threading.Event()
        self.calls: list = []
        self.fail_with = fail_with
        self._lock = threading.Lock()

    def submit(self, queries):
        with self._lock:
            self.calls.append(list(queries))
        if not self.release.wait(timeout=30):
            raise TimeoutError("BlockingService never released")
        if self.fail_with is not None:
            raise self.fail_with
        return [make_answer(query, marker=float(len(self.calls))) for query in queries]

    def counters(self):
        return {
            "queries_served": sum(len(call) for call in self.calls),
            "deduped": 0,
            "engines_cached": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "store_hits": 0,
            "mincut_engines_cached": 0,
            "flow_calls": 0,
        }

    def stats(self):
        return dict(self.counters())


QUERY_A = {"graph": {"family": "fft", "size": 3}, "memory_size": 4}
QUERY_B = {"graph": {"family": "fft", "size": 4}, "memory_size": 4}


def post_in_thread(client: BoundsClient, payload: dict, outcomes: list):
    def run():
        try:
            outcomes.append(client.bounds_raw({"queries": [payload]}))
        except ServerError as exc:
            outcomes.append(exc)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestServingPolicies:
    def test_coalescing_fires_for_identical_inflight_queries(self):
        service = BlockingService()
        with BoundServer(service, port=0) as server:
            server.start()
            client = BoundsClient(server.url)
            outcomes: list = []
            leader = post_in_thread(client, QUERY_A, outcomes)
            wait_until(lambda: len(service.calls) == 1)  # leader is solving
            followers = [post_in_thread(client, QUERY_A, outcomes) for _ in range(3)]
            wait_until(lambda: server.coalescer.coalesced == 3)
            service.release.set()
            for thread in [leader] + followers:
                thread.join(timeout=10)
            assert len(service.calls) == 1  # the herd paid one solve
            bounds = sorted(o["answers"][0]["bound"] for o in outcomes)
            assert bounds == [1.0] * 4  # everyone got the leader's answer
            assert client.metric("repro_coalesced_queries_total") == 3
            assert client.metric("repro_coalesce_leader_solves_total") == 1

    def test_distinct_queries_do_not_coalesce(self):
        service = BlockingService()
        service.release.set()
        with BoundServer(service, port=0) as server:
            server.start()
            client = BoundsClient(server.url)
            client.bounds_raw({"queries": [QUERY_A]})
            client.bounds_raw({"queries": [QUERY_B]})
            assert server.coalescer.coalesced == 0
            assert len(service.calls) == 2

    def test_overload_returns_429_without_corrupting_state(self):
        service = BlockingService()
        with BoundServer(
            service, port=0, max_in_flight=1, max_queue=0, retry_after_seconds=2
        ) as server:
            server.start()
            client = BoundsClient(server.url)
            outcomes: list = []
            blocked = post_in_thread(client, QUERY_A, outcomes)
            wait_until(lambda: len(service.calls) == 1)
            # A *different* query needs its own solve slot: shed with 429.
            with pytest.raises(ServerError) as info:
                client.bounds_raw({"queries": [QUERY_B]})
            assert info.value.status == 429
            assert info.value.code == "overloaded"
            assert info.value.retry_after_seconds == 2
            assert server.admission.rejected == 1
            service.release.set()
            blocked.join(timeout=10)
            assert outcomes[0]["answers"][0]["bound"] == 1.0
            # The shed request corrupted nothing: the port keeps serving,
            # in-flight bookkeeping drained back to zero.
            assert client.bounds_raw({"queries": [QUERY_B]})["answers"]
            assert server.admission.in_flight == 0
            assert server.coalescer.stats()["in_flight"] == 0
            assert client.metric("repro_admission_rejections_total") == 1

    def test_followers_bypass_admission_control(self):
        service = BlockingService()
        with BoundServer(
            service, port=0, max_in_flight=1, max_queue=0
        ) as server:
            server.start()
            client = BoundsClient(server.url)
            outcomes: list = []
            leader = post_in_thread(client, QUERY_A, outcomes)
            wait_until(lambda: len(service.calls) == 1)
            # Identical queries ride the in-flight solve instead of competing
            # for the (full) admission window: a thundering herd on one graph
            # is served whole, never shed.
            followers = [post_in_thread(client, QUERY_A, outcomes) for _ in range(4)]
            wait_until(lambda: server.coalescer.coalesced == 4)
            assert server.admission.rejected == 0
            service.release.set()
            for thread in [leader] + followers:
                thread.join(timeout=10)
            assert [o["answers"][0]["bound"] for o in outcomes] == [1.0] * 5

    def test_bad_query_fails_only_its_own_key(self):
        """One client's invalid query must never 400 another client's valid
        query that coalesced onto the same request's leader."""

        class FussyBlockingService(BlockingService):
            BAD_MEMORY_SIZE = 13

            def submit(self, queries):
                answers = super().submit(queries)
                if any(q.memory_size == self.BAD_MEMORY_SIZE for q in queries):
                    raise ValueError("that memory size is cursed")
                return answers

        good = {"graph": {"family": "fft", "size": 3}, "memory_size": 4}
        bad = {"graph": {"family": "fft", "size": 3}, "memory_size": 13}
        service = FussyBlockingService()
        with BoundServer(service, port=0) as server:
            server.start()
            client = BoundsClient(server.url)
            mixed_outcomes: list = []
            good_outcomes: list = []

            def post_mixed():
                try:
                    mixed_outcomes.append(
                        client.bounds_raw({"queries": [good, bad]})
                    )
                except ServerError as exc:
                    mixed_outcomes.append(exc)

            mixed = threading.Thread(target=post_mixed, daemon=True)
            mixed.start()
            wait_until(lambda: len(service.calls) >= 1)  # leading both keys
            follower = post_in_thread(client, good, good_outcomes)
            wait_until(lambda: server.coalescer.coalesced == 1)
            service.release.set()
            mixed.join(timeout=10)
            follower.join(timeout=10)
            # The mixed request fails (it owns the cursed query)...
            assert isinstance(mixed_outcomes[0], ServerError)
            assert mixed_outcomes[0].status == 400
            # ...but the innocent follower gets its valid answer.
            assert not isinstance(good_outcomes[0], ServerError)
            assert good_outcomes[0]["answers"][0]["bound"] == 1.0

    def test_leader_failure_propagates_to_followers(self):
        service = BlockingService(fail_with=ValueError("solver exploded"))
        with BoundServer(service, port=0) as server:
            server.start()
            client = BoundsClient(server.url)
            outcomes: list = []
            leader = post_in_thread(client, QUERY_A, outcomes)
            wait_until(lambda: len(service.calls) == 1)
            follower = post_in_thread(client, QUERY_A, outcomes)
            wait_until(lambda: server.coalescer.coalesced == 1)
            service.release.set()
            leader.join(timeout=10)
            follower.join(timeout=10)
            assert all(isinstance(o, ServerError) for o in outcomes)
            assert {o.status for o in outcomes} == {400}
            # The failed key left the in-flight table; a retry leads afresh.
            assert server.coalescer.stats()["in_flight"] == 0


class TestServeCLI:
    def test_serve_args_build_a_working_server(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--no-store", "--max-in-flight", "2",
             "--max-queue", "5", "--retry-after", "3.5", "--num-eigenvalues", "25"]
        )
        server = build_server_from_args(args)
        try:
            server.start()
            assert server.admission.max_in_flight == 2
            assert server.admission.max_queue == 5
            assert server.admission.retry_after_seconds == 3.5
            assert server.service.store is None
            client = BoundsClient(server.url)
            assert client.health()["status"] == "ok"
            [answer] = client.bounds(MIXED_QUERIES[:1])
            [expected] = direct_answers(MIXED_QUERIES[:1])
            assert answer.bound == expected.bound
        finally:
            server.close()

    def test_serve_banner_reports_an_active_empty_store(self, tmp_path, capsys, monkeypatch):
        from repro.runtime.cli import main
        from repro.server.runner import BoundServer

        monkeypatch.setattr(BoundServer, "serve_forever", lambda self: None)
        store_root = tmp_path / "fresh-store"
        assert main(["serve", "--port", "0", "--store", str(store_root)]) == 0
        banner = capsys.readouterr().out
        # An empty store is falsy (len() == 0) but very much enabled.
        assert str(store_root) in banner
        assert "disabled" not in banner

    def test_serve_store_and_no_coalesce_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", str(tmp_path / "s"), "--no-coalesce"]
        )
        server = build_server_from_args(args)
        try:
            assert server.coalescer is None
            assert str(server.service.store.root) == str(tmp_path / "s")
        finally:
            server.close()

    def test_workers_flag_and_env_pick_the_worker_count(self, monkeypatch):
        from repro.runtime.cli import _serve_workers

        args = build_parser().parse_args(["serve", "--workers", "3"])
        assert _serve_workers(args) == 3
        args = build_parser().parse_args(["serve"])
        assert _serve_workers(args) == 1  # no flag, no env -> single server
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "4")
        assert _serve_workers(args) == 4
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "0")
        assert _serve_workers(args) == 1  # clamped, never a zero-worker fleet
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "junk")
        assert _serve_workers(args) == 1

    def test_serve_args_build_the_fleet_config(self, tmp_path):
        from repro.runtime.cli import build_fleet_from_args

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "3", "--store",
             str(tmp_path / "s"), "--lease-ttl", "7.5", "--no-coalesce",
             "--num-eigenvalues", "25", "--max-in-flight", "2"]
        )
        fleet = build_fleet_from_args(args, 3)
        try:
            assert fleet.num_workers == 3
            assert len(fleet.worker_urls) == 3
            assert fleet.config.store_root == str(tmp_path / "s")
            assert fleet.config.lease_ttl == 7.5
            assert fleet.config.coalesce is False
            assert fleet.config.num_eigenvalues == 25
            assert fleet.config.max_in_flight == 2
        finally:
            fleet.close()  # never started: just releases the bound sockets


class TestParseMetric:
    EXPOSITION = "\n".join(
        [
            "# HELP repro_lease_total Cross-process solve-lease episodes.",
            "# TYPE repro_lease_total counter",
            'repro_lease_total{role="leader",worker="0"} 1',
            'repro_lease_total{role="follower",worker="0"} 2',
            'repro_lease_total{role="leader",worker="1"} 4',
            "repro_eigensolves_total 6",
        ]
    )

    def test_sums_across_samples(self):
        assert parse_metric(self.EXPOSITION, "repro_lease_total") == 7.0
        assert parse_metric(self.EXPOSITION, "repro_eigensolves_total") == 6.0

    def test_label_filter_is_a_subset_match(self):
        # role="leader" matches both workers' samples; the extra worker
        # label on each sample is ignored unless asked for.
        assert parse_metric(self.EXPOSITION, "repro_lease_total", role="leader") == 5.0
        assert parse_metric(
            self.EXPOSITION, "repro_lease_total", role="leader", worker="1"
        ) == 4.0

    def test_missing_metric_or_label_raises(self):
        with pytest.raises(KeyError):
            parse_metric(self.EXPOSITION, "repro_nope_total")
        with pytest.raises(KeyError):
            parse_metric(self.EXPOSITION, "repro_lease_total", role="bystander")


class TestShardRing:
    def test_owner_is_deterministic_and_in_range(self):
        ring = ShardRing(3)
        again = ShardRing(3)
        for key in ("spec:fft:3", "spec:hypercube:4", "a" * 64):
            assert 0 <= ring.owner(key) < 3
            assert ring.owner(key) == again.owner(key)

    def test_every_worker_owns_a_fair_share(self):
        ring = ShardRing(3)
        counts = [0, 0, 0]
        for index in range(1000):
            counts[ring.owner(f"key-{index}")] += 1
        # Near-uniform, not exact: each worker well clear of starvation.
        assert min(counts) > 150

    def test_resize_remaps_a_minority_of_keys(self):
        keys = [f"key-{index}" for index in range(1000)]
        before = ShardRing(3)
        after = ShardRing(4)
        moved = sum(1 for key in keys if before.owner(key) != after.owner(key))
        # Consistent hashing moves ~1/4 of keys for 3 -> 4 workers; plain
        # modulo hashing would move ~3/4.
        assert moved < 500

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRing(0)
        with pytest.raises(ValueError):
            ShardRing(2, replicas=0)


class TestClientKeepAlive:
    def test_connection_is_reused_across_requests(self, live_server):
        client = BoundsClient(live_server.url)
        assert client.health()["status"] == "ok"
        [first] = list(client._pool().values())
        assert client.stats()["version"] == PROTOCOL_VERSION
        [second] = list(client._pool().values())
        assert second is first  # same pooled HTTPConnection, no re-handshake
        client.close()
        assert client._pool() == {}
        # A closed client transparently re-pools on the next request.
        assert client.health()["status"] == "ok"

    def test_stale_pooled_connection_is_retried_once(self, live_server):
        client = BoundsClient(live_server.url)
        assert client.health()["status"] == "ok"
        # Simulate the server reaping an idle keep-alive connection: the
        # pooled socket is dead but the pool still hands it out.
        import socket

        [conn] = list(client._pool().values())
        conn.sock.shutdown(socket.SHUT_RDWR)
        assert client.health()["status"] == "ok"  # retried on a fresh conn


def _raw_post(base_url: str, payload: dict):
    """One non-redirect-following POST; returns (status, headers, body)."""
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(base_url)
    conn = http.client.HTTPConnection(parts.netloc, timeout=30)
    try:
        conn.request(
            "POST", "/v1/bounds", body=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestServerFleet:
    @staticmethod
    def _wait_healthy(urls, timeout: float = 30.0) -> None:
        def healthy(url):
            try:
                return BoundsClient(url, timeout=5.0).health()["status"] == "ok"
            except (ServerError, OSError):
                return False

        wait_until(lambda: all(healthy(url) for url in urls), timeout=timeout)

    def test_fleet_serves_shards_and_redirects(self, tmp_path):
        config = FleetConfig(
            store_root=str(tmp_path / "store"),
            num_eigenvalues=NUM_EIGENVALUES,
            lease_ttl=10.0,
        )
        with ServerFleet(config, workers=2) as fleet:
            fleet.start()
            self._wait_healthy((fleet.url,) + fleet.worker_urls)
            client = BoundsClient(fleet.url)
            # The shared port serves the full mixed workload bit-exactly
            # (redirects followed transparently by the client).
            assert_same_bounds(
                client.bounds(MIXED_QUERIES), direct_answers(MIXED_QUERIES)
            )
            assert client.fleet_worker_urls() == list(fleet.worker_urls)

            # Shard affinity: a single-graph batch through the shared port
            # is always answered by its ring owner — either directly (the
            # owner won the accept) or via a 307 to the owner's direct port.
            owner = fleet.ring.owner("spec:fft:3")
            payload = encode_bounds_request(
                [BoundQuery(GraphSpec(family="fft", size_param=3), 2)]
            )
            for _ in range(8):
                status, headers, _body = _raw_post(fleet.url, payload)
                if status == 200:
                    assert headers["X-Repro-Worker"] == str(owner)
                else:
                    assert status == 307
                    assert headers["Location"].startswith(
                        fleet.worker_urls[owner]
                    )

            # Direct ports never redirect — that is what makes a redirect
            # loop impossible — even for a graph the worker does not own.
            non_owner = 1 - owner
            status, headers, _body = _raw_post(
                fleet.worker_urls[non_owner], payload
            )
            assert status == 200
            assert headers["X-Repro-Worker"] == str(non_owner)
            assert fleet.restarts == [0, 0]

    def test_killed_worker_is_respawned_on_its_ports(self):
        import os
        import signal

        config = FleetConfig(store_root=None, num_eigenvalues=NUM_EIGENVALUES)
        with ServerFleet(config, workers=2) as fleet:
            fleet.start()
            self._wait_healthy((fleet.url,) + fleet.worker_urls)
            victim = fleet._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            wait_until(lambda: fleet.restarts[0] >= 1, timeout=15.0)
            # The replacement accepts on the predecessor's exact direct
            # port (the parent kept the fd open across the respawn).
            self._wait_healthy((fleet.worker_urls[0],))
            health = BoundsClient(fleet.worker_urls[0]).health()
            assert health["status"] == "ok"
            assert fleet.restarts == [1, 0]

    def test_worker_count_is_validated(self):
        with pytest.raises(ValueError):
            ServerFleet(FleetConfig(), workers=0)


class TestFleetObservability:
    """The aggregated fleet surfaces: merged ``/metrics`` and
    ``/v1/fleet/stats`` on the shared port, per-worker views on the
    direct ports, and the non-fleet 404."""

    def test_shared_port_aggregates_metrics_and_stats(self, tmp_path):
        config = FleetConfig(
            store_root=str(tmp_path / "store"),
            num_eigenvalues=NUM_EIGENVALUES,
            lease_ttl=10.0,
        )
        with ServerFleet(config, workers=2) as fleet:
            fleet.start()
            TestServerFleet._wait_healthy((fleet.url,) + fleet.worker_urls)
            client = BoundsClient(fleet.url)
            client.bounds(MIXED_QUERIES)

            # The shared port serves the union of every worker's samples,
            # worker labels intact — one scrape sees the whole fleet.
            merged = client.fleet_metrics()
            assert 'worker="0"' in merged
            assert 'worker="1"' in merged
            assert parse_metric(merged, "repro_worker_up") == 2
            assert parse_metric(merged, "repro_worker_restarts") == 0
            fleet_solves = parse_metric(merged, "repro_eigensolves_total")
            assert fleet_solves > 0
            per_worker = [
                parse_metric(merged, "repro_eigensolves_total", worker=str(i))
                for i in range(2)
            ]
            assert sum(per_worker) == fleet_solves

            # A direct port stays a single-worker view: its own label
            # only, no sibling samples.
            direct = BoundsClient(fleet.worker_urls[1]).metrics_text()
            assert 'worker="1"' in direct
            assert 'worker="0"' not in direct

            # The JSON rollup agrees with the merged exposition.
            stats = client.fleet_stats()
            assert stats["num_workers"] == 2
            assert stats["unreachable"] == []
            assert [w["worker"] for w in stats["workers"]] == [0, 1]
            for worker in stats["workers"]:
                assert worker["up"] == 1
                assert worker["restarts"] == 0
            assert stats["totals"]["eigensolves"] == fleet_solves
            assert stats["totals"]["up"] == 2
            assert stats["totals"]["http_requests"] > 0

            # Warm replay straight from the aggregate: the whole point of
            # the shared store is zero further eigensolves, and the shared
            # port can now prove it in one request.
            client.bounds(MIXED_QUERIES)
            warm = client.fleet_stats()
            assert warm["totals"]["eigensolves"] == fleet_solves

    def test_plain_server_has_no_fleet_stats(self, live_server):
        client = BoundsClient(live_server.url)
        with pytest.raises(ServerError) as info:
            client.fleet_stats()
        assert info.value.status == 404
        assert info.value.code == "not-a-fleet"
        # ...but fleet_metrics degrades to the local exposition.
        assert "repro_http_requests_total" in client.fleet_metrics()

    def test_stats_reports_latency_quantiles(self, live_server):
        client = BoundsClient(live_server.url)
        client.bounds(MIXED_QUERIES[:2])
        quantiles = client.stats()["latency_quantiles"]
        solve = quantiles["repro_eigensolve_seconds"]
        assert set(solve) == {"p50", "p95", "p99"}
        assert solve["p50"] is not None
        assert solve["p50"] <= solve["p95"] <= solve["p99"]
        assert "repro_admission_wait_seconds" in quantiles
