"""Tests for schedule heuristics and the exact/brute-force references."""

from __future__ import annotations

import pytest

from repro.baselines.exact import minimum_io_over_all_orders, minimum_io_upper_bound
from repro.core.bounds import spectral_bound
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    binary_tree_reduction_graph,
    chain_graph,
    diamond_graph,
    fft_graph,
    inner_product_graph,
)
from repro.graphs.orders import is_topological_order
from repro.pebbling.scheduler import SCHEDULERS, greedy_min_live_order, make_schedule


class TestSchedulers:
    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_all_schedulers_produce_valid_orders(self, name):
        g = fft_graph(3)
        order = make_schedule(g, name, seed=0)
        assert is_topological_order(g, order)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            make_schedule(chain_graph(3), "bogus")

    def test_min_live_prefers_retiring_values(self):
        """On a reduction tree the min-live heuristic should finish each
        subtree before starting the next, keeping the live set near log(n)."""
        g = binary_tree_reduction_graph(8)
        order = greedy_min_live_order(g)
        assert is_topological_order(g, order)

    def test_min_live_on_cycle_raises(self):
        g = ComputationGraph(2)
        g.add_edge(0, 1)
        g._succ[1].append(0)
        g._pred[0].append(1)
        with pytest.raises(ValueError):
            greedy_min_live_order(g)


class TestExactReferences:
    def test_exhaustive_minimum_on_chain_is_zero(self):
        result = minimum_io_over_all_orders(chain_graph(5), M=2)
        assert result.total_io == 0

    def test_exhaustive_minimum_on_inner_product(self):
        g = inner_product_graph(2)
        # With four slots the whole working set fits: no non-trivial I/O.
        assert minimum_io_over_all_orders(g, M=4).total_io == 0
        # With three slots, whichever product is computed second forces the
        # first product to be spilled and re-read: exactly 2 I/Os.
        assert minimum_io_over_all_orders(g, M=3).total_io == 2

    def test_exhaustive_respects_max_orders_cap(self):
        g = ComputationGraph(6)  # 6! = 720 orders, cap at 10
        result = minimum_io_over_all_orders(g, M=2, max_orders=10)
        assert result.total_io == 0

    def test_empty_graph(self):
        result = minimum_io_over_all_orders(ComputationGraph(), M=2)
        assert result.total_io == 0

    def test_heuristic_upper_bound_at_least_exhaustive(self):
        g = inner_product_graph(3)
        exhaustive = minimum_io_over_all_orders(g, M=3, max_orders=20000)
        heuristic = minimum_io_upper_bound(g, M=3)
        assert heuristic.total_io >= exhaustive.total_io

    @pytest.mark.parametrize(
        "graph_builder,size,M",
        [
            (inner_product_graph, 3, 3),
            (diamond_graph, 3, 3),
            (binary_tree_reduction_graph, 6, 3),
        ],
    )
    def test_lower_bounds_below_exhaustive_optimum(self, graph_builder, size, M):
        """Soundness oracle: the spectral bound never exceeds the minimum
        simulated I/O over all evaluation orders of a tiny graph."""
        graph = graph_builder(size)
        if graph.max_in_degree + 1 > M:
            pytest.skip("infeasible memory size")
        optimum = minimum_io_over_all_orders(graph, M, max_orders=20000).total_io
        lower = spectral_bound(graph, M, num_eigenvalues=graph.num_vertices).value
        assert lower <= optimum + 1e-9
