"""Tests for the naive matrix multiplication generators (§6.2, Figure 8)."""

from __future__ import annotations

import pytest

from repro.graphs.generators.matmul import (
    dot_product_formulation_graph,
    naive_matmul_graph,
    naive_matmul_num_vertices,
)


class TestChainReduction:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_vertex_count(self, n):
        g = naive_matmul_graph(n)
        assert g.num_vertices == naive_matmul_num_vertices(n)
        assert g.num_vertices == 2 * n * n + n**3 + n * n * (n - 1)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_edge_count(self, n):
        # Every product has 2 operands, every addition has 2 operands.
        g = naive_matmul_graph(n)
        assert g.num_edges == 2 * n**3 + 2 * n * n * (n - 1)

    def test_max_degrees(self):
        g = naive_matmul_graph(4)
        assert g.max_in_degree == 2
        assert g.max_out_degree == 4  # every input feeds n products

    def test_inputs_and_outputs(self):
        n = 3
        g = naive_matmul_graph(n)
        assert len(g.sources()) == 2 * n * n
        assert len(g.sinks()) == n * n

    def test_acyclic(self):
        naive_matmul_graph(3).validate()

    def test_n1_graph(self):
        g = naive_matmul_graph(1)
        assert g.num_vertices == 3  # a, b, a*b
        assert len(g.sinks()) == 1


class TestFlatReduction:
    """The paper's Figure 8 granularity: one n-ary sum per output entry."""

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_vertex_count(self, n):
        g = naive_matmul_graph(n, reduction="flat")
        assert g.num_vertices == naive_matmul_num_vertices(n, reduction="flat")
        assert g.num_vertices == 2 * n * n + n**3 + n * n

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_max_in_degree_is_n(self, n):
        assert naive_matmul_graph(n, reduction="flat").max_in_degree == n

    def test_outputs(self):
        g = naive_matmul_graph(3, reduction="flat")
        assert len(g.sinks()) == 9


class TestTreeReduction:
    def test_same_counts_as_chain(self):
        chain = naive_matmul_graph(4, reduction="chain")
        tree = naive_matmul_graph(4, reduction="tree")
        assert chain.num_vertices == tree.num_vertices
        assert chain.num_edges == tree.num_edges

    def test_tree_reduces_depth(self):
        chain = naive_matmul_graph(8, reduction="chain")
        tree = naive_matmul_graph(8, reduction="tree")
        assert tree.longest_path_length() < chain.longest_path_length()


class TestDotFormulation:
    def test_counts(self):
        n = 3
        g = dot_product_formulation_graph(n)
        assert g.num_vertices == 2 * n * n + n * n
        assert g.max_in_degree == 2 * n

    def test_acyclic(self):
        dot_product_formulation_graph(2).validate()


class TestValidation:
    def test_bad_reduction_rejected(self):
        with pytest.raises(ValueError):
            naive_matmul_graph(2, reduction="bogus")

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            naive_matmul_graph(0)
