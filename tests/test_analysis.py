"""Tests for the sweep / runtime / reporting / figure harness."""

from __future__ import annotations

import math

import pytest

from repro.analysis.figures import FigureSeries, linear_fit_r_squared, series_from_rows
from repro.analysis.reporting import format_table, maybe_write_results, rows_to_csv, write_csv
from repro.analysis.runtime import runtime_comparison
from repro.analysis.sweep import SweepRow, sweep
from repro.graphs.generators import fft_graph, inner_product_graph


def tiny_fft_sweep():
    return sweep(
        "fft",
        fft_graph,
        size_params=[3, 4],
        memory_sizes=[4, 8],
        methods=("spectral", "convex-min-cut"),
        num_eigenvalues=30,
    )


class TestSweep:
    def test_rows_cover_all_combinations(self):
        rows = tiny_fft_sweep()
        combos = {(r.size_param, r.memory_size, r.method) for r in rows}
        assert len(combos) == 2 * 2 * 2
        assert all(isinstance(r, SweepRow) for r in rows)

    def test_infeasible_memory_skipped(self):
        rows = sweep(
            "dot",
            inner_product_graph,
            size_params=[3],
            memory_sizes=[2],  # max in-degree 2 needs M >= 3
            methods=("spectral",),
        )
        assert rows == []

    def test_skip_infeasible_can_be_disabled(self):
        rows = sweep(
            "dot",
            inner_product_graph,
            size_params=[3],
            memory_sizes=[2],
            methods=("spectral",),
            skip_infeasible=False,
        )
        assert len(rows) == 1

    def test_max_vertices_cap_skips_method(self):
        rows = sweep(
            "fft",
            fft_graph,
            size_params=[4],
            memory_sizes=[4],
            methods=("spectral", "convex-min-cut"),
            max_vertices={"convex-min-cut": 10},
        )
        methods = {r.method for r in rows}
        assert methods == {"spectral"}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            sweep("fft", fft_graph, [3], [4], methods=("bogus",))

    def test_convex_vertex_cap_still_valid_bound(self):
        rows = sweep(
            "fft",
            fft_graph,
            size_params=[4],
            memory_sizes=[4],
            methods=("convex-min-cut",),
            convex_vertex_cap=20,
        )
        assert len(rows) == 1
        assert rows[0].bound >= 0

    def test_row_dict_round_trip(self):
        rows = tiny_fft_sweep()
        as_dict = rows[0].as_dict()
        assert as_dict["family"] == "fft"
        assert "bound" in as_dict


class TestRuntime:
    def test_runtime_rows(self):
        rows = runtime_comparison(
            "fft",
            fft_graph,
            size_params=[3, 4],
            M=4,
            methods=("spectral", "convex-min-cut"),
            convex_max_vertices=100,
        )
        spectral_rows = [r for r in rows if r.method == "spectral"]
        convex_rows = [r for r in rows if r.method == "convex-min-cut"]
        assert len(spectral_rows) == 2
        # The convex baseline is skipped above its vertex cap (fft(4) has 80 > 100? no, 80 < 100)
        assert len(convex_rows) == 2
        assert all(r.elapsed_seconds >= 0 for r in rows)

    def test_runtime_cap_skips_large_graphs(self):
        rows = runtime_comparison(
            "fft",
            fft_graph,
            size_params=[4],
            M=4,
            methods=("convex-min-cut",),
            convex_max_vertices=10,
        )
        assert rows == []

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            runtime_comparison("fft", fft_graph, [3], 4, methods=("bogus",))


class TestReporting:
    def test_format_table_renders_all_rows(self):
        rows = tiny_fft_sweep()
        table = format_table(rows, title="demo")
        assert "demo" in table
        assert table.count("\n") >= len(rows) + 2
        assert "spectral" in table

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_with_columns_subset(self):
        rows = tiny_fft_sweep()
        table = format_table(rows, columns=["size_param", "bound"])
        assert "family" not in table.splitlines()[0]

    def test_csv_round_trip(self, tmp_path):
        rows = tiny_fft_sweep()
        text = rows_to_csv(rows)
        assert text.splitlines()[0].startswith("family,")
        path = write_csv(tmp_path / "out" / "rows.csv", rows)
        assert path.exists()
        assert len(path.read_text().splitlines()) == len(rows) + 1

    def test_maybe_write_results_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WRITE_RESULTS", raising=False)
        assert maybe_write_results("x", tiny_fft_sweep(), directory=tmp_path) is None

    def test_maybe_write_results_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WRITE_RESULTS", "1")
        path = maybe_write_results("x", tiny_fft_sweep(), directory=tmp_path)
        assert path is not None and path.exists()

    def test_format_value_handles_none_and_bool(self):
        table = format_table([{"a": None, "b": True, "c": 1.5}])
        assert "-" in table and "True" in table


class TestFigures:
    def test_series_grouping(self):
        rows = tiny_fft_sweep()
        fig = series_from_rows("fig7", rows, x_of=lambda r: r.size_param, x_label="l")
        assert "Spectral, M=4" in fig.series
        assert "Convex Min-cut, M=8" in fig.series
        for points in fig.series.values():
            xs = [x for x, _ in points]
            assert xs == sorted(xs)

    def test_series_as_rows(self):
        fig = FigureSeries("f", "x")
        fig.add_point("a", 2, 20)
        fig.add_point("a", 1, 10)
        rows = fig.as_rows()
        assert rows[0]["x"] == 1
        assert rows[1]["y"] == 20

    def test_linear_fit_r_squared_perfect_line(self):
        points = [(x, 3 * x + 1) for x in range(10)]
        assert linear_fit_r_squared(points) == pytest.approx(1.0)

    def test_linear_fit_r_squared_noisy(self):
        points = [(x, x * x) for x in range(10)]
        assert linear_fit_r_squared(points) < 1.0

    def test_linear_fit_degenerate(self):
        assert linear_fit_r_squared([(0, 0), (1, 1)]) == 1.0
        assert linear_fit_r_squared([(x, 5.0) for x in range(5)]) == 1.0

    def test_growth_term_transformation(self):
        rows = tiny_fft_sweep()
        fig = series_from_rows(
            "fig7-bottom", rows, x_of=lambda r: r.size_param * 2**r.size_param, x_label="l*2^l"
        )
        xs = [x for pts in fig.series.values() for x, _ in pts]
        assert set(xs) <= {3 * 8, 4 * 16}
        assert not math.isnan(sum(xs))
