"""Tests for the pluggable spectral-backend layer.

Covers the PR 3 contracts:

* every registered backend agrees with the *closed-form* hypercube and
  butterfly (FFT) spectra within tolerance (float32 with a looser one),
* warm-started solves produce the same eigenvalues as cold solves,
* :class:`SpectrumCache` and :class:`SpectrumStore` keys segregate dtype and
  backend variants (mixed-precision spectra coexist),
* the store's size-capped LRU eviction and integrity verification.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.spectra import butterfly_spectrum_array, hypercube_spectrum_array
from repro.graphs.generators import fft_graph, hypercube_graph
from repro.graphs.laplacian import laplacian
from repro.runtime.store import SpectrumStore
from repro.solvers.backend import EigenSolverOptions, smallest_eigenvalues
from repro.solvers.backends import (
    WarmStartContext,
    adapt_subspace,
    available_backends,
    create_backend,
    solve_smallest,
)
from repro.solvers.spectrum_cache import SpectrumCache

H = 12
BACKENDS = ("dense", "sparse", "lanczos", "power", "lobpcg", "amg")


def fft_laplacian(levels: int, sparse: bool = True):
    return laplacian(fft_graph(levels), normalized=False, sparse=sparse)


class TestRegistry:
    def test_all_expected_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_create_backend_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown spectral backend"):
            create_backend("nope", EigenSolverOptions())

    def test_options_validate_method_and_dtype(self):
        with pytest.raises(ValueError, match="method"):
            EigenSolverOptions(method="bogus")
        with pytest.raises(ValueError, match="dtype"):
            EigenSolverOptions(dtype="float16")
        assert EigenSolverOptions(method="lobpcg", dtype="float32").dtype == "float32"


class TestClosedFormParity:
    """All backends must reproduce the paper's closed-form spectra."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hypercube_parity(self, backend):
        # Unnormalized hypercube Laplacian: eigenvalues 2i, mult C(d, i).
        dimension = 5
        exact = hypercube_spectrum_array(dimension)[:H]
        lap = laplacian(hypercube_graph(dimension), normalized=False, sparse=True)
        h = 4 if backend == "power" else H  # deflated power is O(h·iters·nnz)
        options = EigenSolverOptions(method=backend)
        values = smallest_eigenvalues(lap, h, options)
        atol = 1e-3 if backend == "power" else 1e-5
        np.testing.assert_allclose(values, exact[:h], atol=atol)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_butterfly_parity(self, backend):
        levels = 4
        exact = butterfly_spectrum_array(levels)[:H]
        lap = fft_laplacian(levels)
        h = 4 if backend == "power" else H
        options = EigenSolverOptions(method=backend)
        values = smallest_eigenvalues(lap, h, options)
        atol = 1e-3 if backend == "power" else 1e-5
        np.testing.assert_allclose(values, exact[:h], atol=atol)

    @pytest.mark.parametrize("backend", ("dense", "lobpcg", "amg"))
    def test_float32_parity_loose_tolerance(self, backend):
        levels = 4
        exact = butterfly_spectrum_array(levels)[:H]
        lap = fft_laplacian(levels)
        options = EigenSolverOptions(method=backend, dtype="float32")
        values = smallest_eigenvalues(lap, H, options)
        assert values.dtype == np.float64  # results are always upcast
        np.testing.assert_allclose(values, exact, atol=1e-3)


class TestWarmStart:
    def test_warm_resolve_matches_cold_solve(self):
        """A warm-started LOBPCG re-solve reproduces the cold eigenvalues."""
        options = EigenSolverOptions(method="lobpcg")
        context = WarmStartContext()
        lap = fft_laplacian(6)
        cold = solve_smallest(lap, H, options, warm_start=context, lineage="fft")
        assert not cold.warm_started  # nothing to seed from yet
        warm = solve_smallest(lap, H, options, warm_start=context, lineage="fft")
        assert warm.warm_started
        assert context.seeds_served >= 1
        np.testing.assert_allclose(warm.eigenvalues, cold.eigenvalues, atol=1e-6)

    def test_dimension_mismatch_is_never_seeded(self):
        """Consecutive family levels have different sizes: no prolongation."""
        options = EigenSolverOptions(method="lobpcg")
        context = WarmStartContext()
        solve_smallest(fft_laplacian(5), H, options, warm_start=context, lineage="fft")
        bigger = solve_smallest(
            fft_laplacian(6), H, options, warm_start=context, lineage="fft"
        )
        assert not bigger.warm_started

    def test_lanczos_warm_start_matches_cold(self):
        options = EigenSolverOptions(method="lanczos")
        context = WarmStartContext()
        lap = fft_laplacian(4)
        cold = solve_smallest(lap, 8, options)
        solve_smallest(lap, 8, options, warm_start=context, lineage="fft")
        warm = solve_smallest(lap, 8, options, warm_start=context, lineage="fft")
        assert warm.warm_started
        np.testing.assert_allclose(warm.eigenvalues, cold.eigenvalues, atol=1e-5)

    def test_contexts_segregate_normalization_and_options(self):
        context = WarmStartContext()
        opts = EigenSolverOptions(method="lobpcg")
        context.update(WarmStartContext.key("fft", True, opts), np.eye(8))
        assert context.get(WarmStartContext.key("fft", False, opts)) is None
        assert context.get(WarmStartContext.key("fft", True, opts)) is not None
        other = EigenSolverOptions(method="lobpcg", dtype="float32")
        assert context.get(WarmStartContext.key("fft", True, other)) is None

    def test_adapt_subspace_adjusts_columns_and_orthonormalizes(self):
        rng = np.random.default_rng(0)
        prev = rng.standard_normal((32, 4))
        adapted = adapt_subspace(prev, 32, 6, rng)
        assert adapted.shape == (32, 6)
        np.testing.assert_allclose(adapted.T @ adapted, np.eye(6), atol=1e-10)
        assert adapt_subspace(None, 32, 6, rng) is None
        # Cross-dimension seeds are rejected (prolongation measured harmful).
        assert adapt_subspace(prev, 64, 6, rng) is None

    def test_backends_without_warm_support_ignore_context(self):
        context = WarmStartContext()
        lap = fft_laplacian(3, sparse=False)
        result = solve_smallest(
            lap, 5, EigenSolverOptions(method="dense"), warm_start=context, lineage="x"
        )
        assert not result.warm_started
        assert len(context) == 0  # dense produces no vectors to stash


class TestCacheKeySegregation:
    def test_dtype_variants_coexist_in_memory_cache(self):
        cache = SpectrumCache()
        graph = fft_graph(4)
        f64 = cache.spectrum(graph, 6, eig_options=EigenSolverOptions(method="dense"))
        f32 = cache.spectrum(
            graph, 6, eig_options=EigenSolverOptions(method="dense", dtype="float32")
        )
        assert cache.misses == 2  # distinct keys -> two solves
        assert not f64.cache_hit and not f32.cache_hit
        assert f64.dtype == "float64" and f32.dtype == "float32"
        again = cache.spectrum(
            graph, 6, eig_options=EigenSolverOptions(method="dense", dtype="float32")
        )
        assert again.cache_hit

    def test_backend_variants_coexist_in_memory_cache(self):
        cache = SpectrumCache()
        graph = fft_graph(4)
        cache.spectrum(graph, 6, eig_options=EigenSolverOptions(method="dense"))
        cache.spectrum(graph, 6, eig_options=EigenSolverOptions(method="lobpcg"))
        assert cache.misses == 2

    def test_cached_spectrum_reports_backend(self):
        cache = SpectrumCache()
        fetched = cache.spectrum(
            fft_graph(4), 6, eig_options=EigenSolverOptions(method="lobpcg")
        )
        assert fetched.backend == "lobpcg"

    def test_store_segregates_dtype_and_records_backend(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        cache = SpectrumCache(store=store)
        graph = fft_graph(4)
        cache.spectrum(graph, 6, eig_options=EigenSolverOptions(method="lobpcg"))
        cache.spectrum(
            graph, 6, eig_options=EigenSolverOptions(method="lobpcg", dtype="float32")
        )
        assert len(store) == 2
        entries = store.entries()
        assert {e["dtype"] for e in entries} == {"float64", "float32"}
        assert {e["backend"] for e in entries} == {"lobpcg"}
        # A fresh cache against the same store serves both variants from disk.
        warm = SpectrumCache(store=SpectrumStore(tmp_path / "s"))
        f32 = warm.spectrum(
            graph, 6, eig_options=EigenSolverOptions(method="lobpcg", dtype="float32")
        )
        assert f32.cache_hit and warm.store_hits == 1
        assert f32.backend == "lobpcg"


class TestStoreHygiene:
    def put_spectrum(self, store, fingerprint, h=32, lineage=None):
        values = np.linspace(0.0, 1.0, h)
        return store.put(
            fingerprint, values, 0.1, backend="dense", lineage=lineage
        )

    def test_max_bytes_evicts_least_recently_used(self, tmp_path):
        store = SpectrumStore(tmp_path / "s", max_bytes=1)  # everything over budget
        self.put_spectrum(store, "a" * 40)
        self.put_spectrum(store, "b" * 40)
        # The newest entry always survives; older ones are evicted.
        assert len(store) == 1
        assert store.entries()[0]["fingerprint"] == "b" * 12

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        for ch in "abcd":
            self.put_spectrum(store, ch * 40)
        assert len(store) == 4

    def test_max_bytes_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPECTRUM_STORE_MAX_BYTES", "1")
        store = SpectrumStore(tmp_path / "s")
        assert store.max_bytes == 1
        monkeypatch.setenv("REPRO_SPECTRUM_STORE_MAX_BYTES", "")
        assert SpectrumStore(tmp_path / "s").max_bytes is None

    def test_verify_clean_store(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        self.put_spectrum(store, "a" * 40)
        report = store.verify()
        assert report["ok"] and report["entries_checked"] == 1

    def test_verify_detects_and_fixes_corruption(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        entry_a = self.put_spectrum(store, "a" * 40)
        entry_b = self.put_spectrum(store, "b" * 40)
        blob_dir = tmp_path / "s" / "blobs"
        (blob_dir / f"{entry_a}.npz").write_bytes(b"not a zipfile")  # corrupt
        (blob_dir / f"{entry_b}.npz").unlink()  # missing
        (blob_dir / "orphan.npz").write_bytes(b"stray")  # orphaned
        # Age the orphan past verify's young-blob grace period (a fresh blob
        # could be a concurrent put that has not indexed its entry yet).
        old = time.time() - 120
        os.utime(blob_dir / "orphan.npz", (old, old))
        report = store.verify()
        assert not report["ok"]
        assert report["corrupt"] == [entry_a]
        assert report["missing"] == [entry_b]
        assert report["orphaned_blobs"] == ["orphan.npz"]
        fixed = store.verify(fix=True)
        assert fixed["entries_removed"] == 2
        after = store.verify()
        assert after["ok"] and after["entries_checked"] == 0
        assert not (blob_dir / "orphan.npz").exists()

    def test_clear_by_lineage_and_fingerprint(self, tmp_path):
        store = SpectrumStore(tmp_path / "s")
        self.put_spectrum(store, "a" * 40, lineage="fft")
        self.put_spectrum(store, "b" * 40, lineage="fft")
        self.put_spectrum(store, "c" * 40, lineage="matmul")
        assert store.clear(fingerprint_prefix="aaaa") == 1
        assert store.clear(lineage="fft") == 1  # only "b" left under fft
        assert store.clear(lineage="fft") == 0
        assert len(store) == 1
        assert store.clear() == 1  # unfiltered clear removes the rest
