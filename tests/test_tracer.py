"""Tests for the computation tracer (TracedValue, GraphTracer, custom ops, API)."""

from __future__ import annotations

import pytest

from repro.trace.api import trace_computation, trace_scalar_function
from repro.trace.ops import custom_op
from repro.trace.tracer import GraphTracer
from repro.trace.value import TracedValue


class TestTracedValueArithmetic:
    def setup_method(self):
        self.tracer = GraphTracer()

    def test_add_records_vertex_and_value(self):
        a = self.tracer.input(2.0)
        b = self.tracer.input(3.0)
        c = a + b
        assert isinstance(c, TracedValue)
        assert c.value == 5.0
        assert set(self.tracer.graph.predecessors(c.vertex)) == {a.vertex, b.vertex}
        assert self.tracer.graph.op(c.vertex) == "add"

    @pytest.mark.parametrize(
        "expr,expected,op",
        [
            (lambda a, b: a - b, -1.0, "sub"),
            (lambda a, b: a * b, 6.0, "mul"),
            (lambda a, b: a / b, 2.0 / 3.0, "div"),
            (lambda a, b: a**b, 8.0, "pow"),
        ],
    )
    def test_binary_operators(self, expr, expected, op):
        a = self.tracer.input(2.0)
        b = self.tracer.input(3.0)
        c = expr(a, b)
        assert c.value == pytest.approx(expected)
        assert self.tracer.graph.op(c.vertex) == op

    def test_unary_operators(self):
        a = self.tracer.input(-2.0)
        assert (-a).value == 2.0
        assert abs(a).value == 2.0
        assert self.tracer.graph.op((-a).vertex) == "neg"

    def test_reflected_operators_with_constants(self):
        a = self.tracer.input(4.0)
        assert (10 - a).value == 6.0
        assert (2 * a).value == 8.0
        assert (8 / a).value == 2.0
        assert (3 + a).value == 7.0

    def test_constant_operands_memoised(self):
        a = self.tracer.input(1.0)
        _ = a + 2.0
        _ = a * 2.0
        consts = self.tracer.graph.vertices_with_op("const")
        assert len(consts) == 1  # the literal 2.0 is shared

    def test_duplicate_operand_single_edge(self):
        a = self.tracer.input(3.0)
        sq = a * a
        assert self.tracer.graph.in_degree(sq.vertex) == 1

    def test_comparisons_use_values(self):
        a = self.tracer.input(1.0)
        b = self.tracer.input(2.0)
        assert a < b and b > a and a <= b and b >= a
        assert a == 1.0 and float(b) == 2.0

    def test_mixing_tracers_rejected(self):
        other = GraphTracer()
        a = self.tracer.input(1.0)
        b = other.input(1.0)
        with pytest.raises(ValueError, match="different tracers"):
            _ = a + b

    def test_non_numeric_operand_rejected(self):
        a = self.tracer.input(1.0)
        with pytest.raises(TypeError):
            _ = a + "x"  # type: ignore[operator]


class TestGraphTracer:
    def test_inputs_by_count_and_values(self):
        tracer = GraphTracer()
        xs = tracer.inputs(3)
        ys = tracer.inputs([1.0, 2.0], prefix="y")
        assert len(xs) == 3 and len(ys) == 2
        assert ys[1].value == 2.0
        assert tracer.graph.label(ys[0].vertex) == "y[0]"

    def test_mark_output_sets_label(self):
        tracer = GraphTracer()
        x = tracer.input(1.0)
        y = x + x
        tracer.mark_output(y, "result")
        assert tracer.graph.label(y.vertex) == "result"
        assert tracer.output_vertices == (y.vertex,)

    def test_mark_output_foreign_value_rejected(self):
        tracer = GraphTracer()
        other = GraphTracer()
        v = other.input(1.0)
        with pytest.raises(ValueError):
            tracer.mark_output(v)

    def test_record_with_plain_numbers(self):
        tracer = GraphTracer()
        x = tracer.input(2.0)
        r = tracer.record("fma", (x, 3.0, 4.0), 10.0)
        assert tracer.graph.in_degree(r.vertex) == 3
        assert tracer.num_operations == 4  # input, two constants, fma

    def test_graph_is_acyclic(self):
        tracer = GraphTracer()
        xs = tracer.inputs(4)
        total = xs[0]
        for x in xs[1:]:
            total = total + x
        tracer.graph.validate()

    def test_invalid_value_rejected(self):
        tracer = GraphTracer()
        with pytest.raises(TypeError):
            tracer.input("not a number")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            tracer.input(True)  # type: ignore[arg-type]

    def test_edges_flushed_in_bulk_when_graph_is_read(self):
        # Edges are buffered per record and materialised through
        # add_edges_array; the flushed graph is identical to eager edge-adds.
        tracer = GraphTracer()
        xs = tracer.inputs([1.0, 2.0, 3.0])
        ys = tracer.inputs([4.0, 5.0, 6.0], prefix="y")
        acc = xs[0] * ys[0]
        for a, b in zip(xs[1:], ys[1:]):
            acc = acc + a * b
        graph = tracer.graph
        assert graph.num_edges == 10  # 3 muls x 2 operands + 2 adds x 2
        assert graph.in_degree(acc.vertex) == 2
        graph.validate()

    def test_graph_reads_interleaved_with_tracing(self):
        # Reading the graph mid-trace flushes incrementally; continuing to
        # trace afterwards keeps extending the same graph.
        tracer = GraphTracer()
        x = tracer.input(1.0)
        y = x + x
        assert tracer.graph.num_edges == 1  # duplicate operand de-duplicated
        z = y * x
        graph = tracer.graph
        assert graph.num_edges == 3
        assert sorted(graph.predecessors(z.vertex)) == sorted([x.vertex, y.vertex])


class TestCustomOps:
    def test_custom_op_traced(self):
        @custom_op("fma")
        def fma(a, b, c):
            return a * b + c

        tracer = GraphTracer()
        x, y, z = tracer.inputs([2.0, 3.0, 4.0])
        out = fma(x, y, z)
        assert out.value == 10.0
        assert tracer.graph.op(out.vertex) == "fma"
        assert tracer.graph.in_degree(out.vertex) == 3

    def test_custom_op_plain_numbers_untouched(self):
        @custom_op()
        def triple(a):
            return 3 * a

        assert triple(2.0) == 6.0

    def test_custom_op_mixed_operands(self):
        @custom_op("axpy")
        def axpy(alpha, x, y):
            return alpha * x + y

        tracer = GraphTracer()
        x, y = tracer.inputs([1.0, 2.0])
        out = axpy(2.0, x, y)
        assert out.value == 4.0
        # alpha becomes a constant vertex, so in-degree is 3.
        assert tracer.graph.in_degree(out.vertex) == 3

    def test_custom_op_rejects_kwargs_when_traced(self):
        @custom_op()
        def f(a, b):
            return a + b

        tracer = GraphTracer()
        x = tracer.input(1.0)
        with pytest.raises(TypeError):
            f(x, b=2.0)

    def test_custom_op_rejects_cross_tracer(self):
        @custom_op()
        def f(a, b):
            return a + b

        t1, t2 = GraphTracer(), GraphTracer()
        with pytest.raises(ValueError):
            f(t1.input(1.0), t2.input(2.0))


class TestHighLevelAPI:
    def test_trace_inner_product(self):
        def dot(xs, ys):
            total = xs[0] * ys[0]
            for a, b in zip(xs[1:], ys[1:]):
                total = total + a * b
            return total

        graph, tracer = trace_computation(dot, [1.0, 2.0], [3.0, 4.0])
        assert graph.num_vertices == 7  # Figure 1
        assert len(tracer.output_vertices) == 1

    def test_trace_preserves_numerical_result(self):
        """The traced execution still computes the correct numbers."""

        def poly(x):
            return 3.0 * x * x + 2.0 * x + 1.0

        tracer = GraphTracer()
        x = tracer.input(2.0, label="x")
        result = poly(x)
        assert result.value == pytest.approx(17.0)
        graph, _ = trace_computation(poly, 2.0)
        assert graph.num_vertices > 4

    def test_trace_nested_structure(self):
        def matvec(matrix, vector):
            return [sum_row(row, vector) for row in matrix]

        def sum_row(row, vector):
            total = row[0] * vector[0]
            for a, b in zip(row[1:], vector[1:]):
                total = total + a * b
            return total

        graph, tracer = trace_computation(matvec, [[1.0, 2.0], [3.0, 4.0]], [5.0, 6.0])
        assert len(tracer.output_vertices) == 2
        assert graph.num_vertices == 6 + 4 + 2  # inputs + products + adds

    def test_trace_scalar_function(self):
        graph, _ = trace_scalar_function(lambda a, b, c: a + b + c, 3)
        assert graph.num_vertices == 5
        assert len(graph.sinks()) == 1

    def test_trace_scalar_function_invalid_count(self):
        with pytest.raises(ValueError):
            trace_scalar_function(lambda: 0.0, -1)

    def test_trace_rejects_bad_templates(self):
        with pytest.raises(TypeError):
            trace_computation(lambda x: x, "hello")

    def test_trace_rejects_bad_return_type(self):
        with pytest.raises(TypeError):
            trace_computation(lambda x: object(), 1.0)

    def test_dict_outputs_collected(self):
        def f(x):
            return {"double": x + x, "square": x * x}

        _, tracer = trace_computation(f, 3.0)
        assert len(tracer.output_vertices) == 2
