"""Tests for the Dinic max-flow substrate."""

from __future__ import annotations

import pytest

from repro.baselines.maxflow import INFINITE_CAPACITY, MaxFlowSolver


class TestBasicFlows:
    def test_single_edge(self):
        solver = MaxFlowSolver(2)
        solver.add_edge(0, 1, 5)
        assert solver.max_flow(0, 1) == 5

    def test_series_edges_bottleneck(self):
        solver = MaxFlowSolver(3)
        solver.add_edge(0, 1, 5)
        solver.add_edge(1, 2, 3)
        assert solver.max_flow(0, 2) == 3

    def test_parallel_paths_sum(self):
        solver = MaxFlowSolver(4)
        solver.add_edge(0, 1, 2)
        solver.add_edge(1, 3, 2)
        solver.add_edge(0, 2, 3)
        solver.add_edge(2, 3, 3)
        assert solver.max_flow(0, 3) == 5

    def test_disconnected_zero_flow(self):
        solver = MaxFlowSolver(4)
        solver.add_edge(0, 1, 4)
        solver.add_edge(2, 3, 4)
        assert solver.max_flow(0, 3) == 0

    def test_classic_network(self):
        # CLRS-style example.
        solver = MaxFlowSolver(6)
        edges = [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ]
        for u, v, c in edges:
            solver.add_edge(u, v, c)
        assert solver.max_flow(0, 5) == 23

    def test_infinite_capacity_arcs(self):
        solver = MaxFlowSolver(4)
        solver.add_edge(0, 1, INFINITE_CAPACITY)
        solver.add_edge(1, 2, 7)
        solver.add_edge(2, 3, INFINITE_CAPACITY)
        assert solver.max_flow(0, 3) == 7

    def test_long_chain_no_recursion_issue(self):
        """The iterative DFS must handle very long augmenting paths."""
        length = 5000
        solver = MaxFlowSolver(length)
        for v in range(length - 1):
            solver.add_edge(v, v + 1, 2)
        assert solver.max_flow(0, length - 1) == 2


class TestMinCut:
    def test_source_side_after_flow(self):
        solver = MaxFlowSolver(4)
        solver.add_edge(0, 1, 1)
        solver.add_edge(1, 2, 10)
        solver.add_edge(2, 3, 10)
        assert solver.max_flow(0, 3) == 1
        side = solver.min_cut_source_side(0)
        assert side == {0}

    def test_cut_value_matches_flow(self):
        solver = MaxFlowSolver(5)
        edges = [(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (3, 4, 4)]
        for u, v, c in edges:
            solver.add_edge(u, v, c)
        flow = solver.max_flow(0, 4)
        side = solver.min_cut_source_side(0)
        cut = sum(c for u, v, c in edges if u in side and v not in side)
        assert flow == cut == 4


class TestValidation:
    def test_bad_nodes_rejected(self):
        solver = MaxFlowSolver(2)
        with pytest.raises(ValueError):
            solver.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            solver.max_flow(0, 9)

    def test_same_source_sink_rejected(self):
        solver = MaxFlowSolver(2)
        with pytest.raises(ValueError):
            solver.max_flow(1, 1)

    def test_negative_capacity_rejected(self):
        solver = MaxFlowSolver(2)
        with pytest.raises(ValueError):
            solver.add_edge(0, 1, -1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MaxFlowSolver(-1)
