"""Tests for the shared utilities (validation, RNG, math helpers, logging)."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils.logging import enable_progress_logging, get_logger
from repro.utils.mathutils import (
    binomial,
    floor_div,
    is_power_of_two,
    log2_int,
    next_power_of_two,
)
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_memory_size,
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
    check_probability,
)


class TestValidation:
    def test_positive_int_accepts_and_converts(self):
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_int_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", True, None])
    def test_positive_int_rejects_wrong_type(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-2, "x")

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        with pytest.raises(ValueError):
            check_probability(1.2, "p")
        with pytest.raises(TypeError):
            check_probability("0.2", "p")

    def test_memory_size(self):
        assert check_memory_size(8) == 8
        with pytest.raises(ValueError):
            check_memory_size(0)

    def test_power_of_two(self):
        assert check_power_of_two(16, "n") == 16
        with pytest.raises(ValueError):
            check_power_of_two(12, "n")

    def test_error_messages_name_parameter(self):
        with pytest.raises(ValueError, match="fast_mem"):
            check_positive_int(-1, "fast_mem")


class TestMathUtils:
    def test_binomial(self):
        assert binomial(5, 2) == 10
        assert binomial(5, 0) == 1
        assert binomial(5, 6) == 0
        assert binomial(5, -1) == 0

    def test_floor_div(self):
        assert floor_div(7, 2) == 3
        with pytest.raises(ValueError):
            floor_div(7, 0)

    def test_power_of_two_helpers(self):
        assert is_power_of_two(8)
        assert not is_power_of_two(12)
        assert not is_power_of_two(0)
        assert next_power_of_two(9) == 16
        assert next_power_of_two(1) == 1
        with pytest.raises(ValueError):
            next_power_of_two(0)
        assert log2_int(32) == 5
        with pytest.raises(ValueError):
            log2_int(12)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a = as_rng(3).integers(1000)
        b = as_rng(3).integers(1000)
        assert a == b

    def test_as_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [r.integers(1000) for r in spawn_rngs(7, 3)]
        second = [r.integers(1000) for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_rngs_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("bounds").name == "repro.bounds"

    def test_enable_progress_logging_idempotent(self):
        enable_progress_logging(logging.DEBUG)
        handlers_before = len(get_logger().handlers)
        enable_progress_logging(logging.INFO)
        assert len(get_logger().handlers) == handlers_before
