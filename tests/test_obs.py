"""Tests for :mod:`repro.obs` — tracing, no-op guarantees, pool propagation.

The load-bearing contracts: (1) with no tracer configured the whole
observability surface is a shared no-op (zero file writes, metrics
untouched by span calls); (2) a pooled sweep produces ONE coherent trace
tree — worker spans re-root under the parent sweep span, shards merge
losslessly into the main JSONL file, and the merge happens even when a
worker task fails; (3) the JSON surfaces (``sweep --json`` task records,
HTTP answers) carry trace/span ids that resolve into that tree.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.obs.report import build_trees, render_report, report_as_json, self_times
from repro.runtime.families import GraphSpec
from repro.runtime.orchestrator import SweepOrchestrator
from repro.runtime.service import BoundAnswer, BoundService
from repro.server.runner import BoundServer

NUM_EIGENVALUES = 20


@pytest.fixture(autouse=True)
def _tracing_off_after():
    """Every test leaves the process in the default (disabled) state."""
    yield
    obs.disable()


def read_spans(path):
    return obs.load_spans(str(path))


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_share_trace_and_link_parents(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(str(path))
        with obs.span("outer", kind="test") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                ctx = obs.current_context()
                assert ctx.span_id == inner.span_id
        obs.disable()
        spans = read_spans(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]  # finish order
        inner_rec, outer_rec = spans
        assert inner_rec["trace_id"] == outer_rec["trace_id"]
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert outer_rec["attrs"] == {"kind": "test"}
        assert outer_rec["pid"] == os.getpid()
        assert outer_rec["wall_seconds"] >= inner_rec["wall_seconds"] >= 0.0
        assert all(s["status"] == "ok" for s in spans)

    def test_sibling_spans_get_distinct_ids(self, tmp_path):
        obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("root"):
            with obs.span("a") as a:
                pass
            with obs.span("b") as b:
                pass
        assert a.span_id != b.span_id
        assert a.trace_id == b.trace_id

    def test_exception_marks_span_error_and_propagates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(str(path))
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        obs.disable()
        [record] = read_spans(path)
        assert record["status"] == "error"

    def test_set_attr_lands_in_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(str(path))
        with obs.span("solve", backend=None) as active:
            active.set_attr(backend="dense")
        obs.disable()
        [record] = read_spans(path)
        assert record["attrs"]["backend"] == "dense"

    def test_ring_buffer_holds_recent_spans(self):
        obs.configure(None)  # ring buffer only, no file sink
        with obs.span("only"):
            pass
        [record] = obs.recent_spans()
        assert record.name == "only"

    def test_current_context_none_when_idle(self):
        obs.configure(None)
        assert obs.current_context() is None


# ---------------------------------------------------------------------------
# no-op mode
# ---------------------------------------------------------------------------
class TestDisabled:
    def test_span_is_one_shared_noop_object(self):
        obs.disable()
        assert not obs.enabled()
        first = obs.span("eigensolve", fingerprint="abc")
        second = obs.span("mincut")
        assert first is second  # no per-call allocation on the hot path
        with first as active:
            active.set_attr(backend="dense")
            assert active.trace_id is None and active.span_id is None
        assert obs.current_context() is None
        assert obs.recent_spans() == []

    def test_disabled_sweep_writes_no_trace_files(self, tmp_path, monkeypatch):
        obs.disable()
        monkeypatch.chdir(tmp_path)
        report = SweepOrchestrator(store=None, num_eigenvalues=NUM_EIGENVALUES).run_family(
            "fft", None, [3], [4]
        )
        assert report.num_rows == 1
        assert list(tmp_path.iterdir()) == []  # zero JSONL (or any) writes
        assert obs.recent_spans() == []
        assert all(t.trace_id is None and t.span_id is None for t in report.tasks)

    def test_noop_spans_leave_metrics_unchanged(self):
        obs.disable()
        before = obs.global_registry().snapshot()
        for _ in range(100):
            with obs.span("eigensolve", fingerprint=None, h=100) as active:
                active.set_attr(backend="dense")
        assert obs.global_registry().snapshot() == before


# ---------------------------------------------------------------------------
# cross-process propagation
# ---------------------------------------------------------------------------
class TestPoolPropagation:
    def run_pooled(self, tmp_path, **kwargs):
        path = tmp_path / "trace.jsonl"
        obs.configure(str(path))
        orchestrator = SweepOrchestrator(
            store=tmp_path / "spectra",
            processes=2,
            num_eigenvalues=NUM_EIGENVALUES,
            **kwargs,
        )
        report = orchestrator.run_family("fft", None, [3, 4], [4, 8])
        obs.disable()
        return path, report

    def test_worker_spans_re_root_under_the_sweep_span(self, tmp_path):
        path, report = self.run_pooled(tmp_path)
        spans = read_spans(path)
        assert len({s["trace_id"] for s in spans}) == 1  # one coherent trace
        sweeps = [s for s in spans if s["name"] == "sweep"]
        assert len(sweeps) == 1
        tasks = [s for s in spans if s["name"] == "task"]
        assert len(tasks) == len(report.tasks)
        assert all(t["parent_id"] == sweeps[0]["span_id"] for t in tasks)
        # Tasks ran in pool workers, not in this process.
        assert all(t["pid"] != sweeps[0]["pid"] for t in tasks)
        task_ids = {t["span_id"] for t in tasks}
        solves = [s for s in spans if s["name"] == "eigensolve"]
        assert solves and all(s["parent_id"] in task_ids for s in solves)

    def test_shard_merge_is_lossless(self, tmp_path):
        path, report = self.run_pooled(tmp_path)
        leftovers = [n for n in os.listdir(tmp_path) if ".shard-" in n]
        assert leftovers == []  # every shard folded into the main file
        spans = read_spans(path)
        # Each task span written by a worker made it into the merged file,
        # and the ids the TaskRecords advertise resolve against it.
        ids = {s["span_id"] for s in spans}
        for record in report.tasks:
            assert record.trace_id == spans[0]["trace_id"]
            assert record.span_id in ids

    def test_spans_survive_task_failure(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(str(path))
        orchestrator = SweepOrchestrator(
            store=None, processes=2, num_eigenvalues=NUM_EIGENVALUES
        )
        specs = [
            GraphSpec(family="fft", size_param=3),
            GraphSpec(path=str(tmp_path / "no-such-graph.npz")),
        ]
        with pytest.raises(Exception):
            orchestrator.run_specs(specs, [4])
        obs.disable()
        spans = read_spans(path)
        # The failing worker's span was still recorded (status=error) and
        # merged; the sweep span carries the error too.
        assert any(s["name"] == "task" and s["status"] == "error" for s in spans)
        assert any(s["name"] == "sweep" and s["status"] == "error" for s in spans)
        assert [n for n in os.listdir(tmp_path) if ".shard-" in n] == []

    def test_worker_configure_primitives(self, tmp_path):
        base = str(tmp_path / "trace.jsonl")
        parent = obs.TraceContext(trace_id="t" * 16, span_id="s" * 16)
        obs.worker_configure(parent, base)
        with obs.span("task") as active:
            assert active.trace_id == parent.trace_id
            assert active.parent_id == parent.span_id
        shard = obs.shard_path(base)
        assert os.path.exists(shard)
        obs.disable()
        merged = obs.merge_shards(base, base)
        assert merged == 1
        assert not os.path.exists(shard)
        assert read_spans(base)[0]["trace_id"] == parent.trace_id
        # parent=None silences the worker entirely.
        obs.worker_configure(None, base)
        assert not obs.enabled()


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------
def synthetic_span(name, span_id, parent_id, start, wall, cpu=None, **attrs):
    return {
        "trace_id": "deadbeef00000000",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "pid": 1234,
        "start_unix": start,
        "wall_seconds": wall,
        "cpu_seconds": cpu if cpu is not None else wall,
        "status": "ok",
        "attrs": attrs,
    }


class TestReport:
    def test_tree_and_self_time(self):
        spans = [
            synthetic_span("sweep", "root", None, 0.0, 1.0),
            synthetic_span("task", "t1", "root", 0.1, 0.4),
            synthetic_span("eigensolve", "e1", "t1", 0.2, 0.3, backend="dense"),
        ]
        roots, children = build_trees(spans)
        assert [r["span_id"] for r in roots] == ["root"]
        assert [c["span_id"] for c in children["root"]] == ["t1"]
        table = dict(
            (name, (count, self_wall)) for name, count, self_wall, _ in self_times(spans)
        )
        assert table["sweep"] == (1, pytest.approx(0.6))
        assert table["task"] == (1, pytest.approx(0.1))
        assert table["eigensolve"] == (1, pytest.approx(0.3))
        text = render_report(spans)
        assert "sweep" in text and "backend=dense" in text
        assert text.index("sweep") < text.index("task") < text.index("eigensolve")

    def test_orphan_parent_becomes_root(self):
        spans = [synthetic_span("task", "t1", "gone", 0.0, 0.5)]
        roots, _ = build_trees(spans)
        assert [r["span_id"] for r in roots] == ["t1"]

    def test_empty_trace(self):
        assert "empty" in render_report([])


# ---------------------------------------------------------------------------
# server surfacing
# ---------------------------------------------------------------------------
def http_get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestServerSurfacing:
    def test_trace_id_header_and_query_span(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        obs.configure(str(path))
        service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(service, port=0) as server:
            server.start()
            payload = json.dumps(
                {"queries": [{"graph": {"family": "fft", "size": 3}, "memory_size": 4}]}
            ).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/bounds",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                trace_id = response.headers["X-Repro-Trace-Id"]
                body = json.loads(response.read().decode())
        obs.disable()
        assert trace_id
        spans = read_spans(path)
        requests = [s for s in spans if s["name"] == "http_request"]
        assert any(s["trace_id"] == trace_id for s in requests)
        # The query span nests under the request span and its id is what
        # the answer advertises, so /v1 answers resolve into the trace.
        queries = [s for s in spans if s["name"] == "query"]
        assert queries and queries[0]["trace_id"] == trace_id
        assert body["answers"][0]["trace_id"] == trace_id

    def test_no_header_when_disabled(self):
        obs.disable()
        service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(service, port=0) as server:
            server.start()
            _, headers, _ = http_get(f"{server.url}/healthz")
        assert "X-Repro-Trace-Id" not in headers

    def test_metrics_endpoint_unions_global_registry(self):
        obs.disable()
        service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(service, port=0) as server:
            server.start()
            payload = json.dumps(
                {"queries": [{"graph": {"family": "fft", "size": 4}, "memory_size": 4}]}
            ).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/bounds",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            urllib.request.urlopen(request, timeout=30).read()
            _, _, text = http_get(f"{server.url}/metrics")
        assert "repro_http_requests_total" in text  # per-server registry
        assert "repro_eigensolve_seconds" in text  # process-global registry
        assert "repro_spectrum_lookups_total" in text

    def test_slow_query_log_counts_and_logs(self, monkeypatch, caplog):
        obs.disable()
        monkeypatch.setenv("REPRO_SLOW_QUERY_SECONDS", "0")
        before = obs.global_registry().get("repro_slow_queries_total").value()
        service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(service, port=0) as server:
            server.start()
            with caplog.at_level("WARNING", logger="repro.server.slow"):
                http_get(f"{server.url}/healthz")
        after = obs.global_registry().get("repro_slow_queries_total").value()
        assert after >= before + 1
        assert any("slow query" in message for message in caplog.messages)

    def test_threshold_unset_means_no_slow_log(self, monkeypatch):
        obs.disable()
        monkeypatch.delenv("REPRO_SLOW_QUERY_SECONDS", raising=False)
        before = obs.global_registry().get("repro_slow_queries_total").value()
        service = BoundService(num_eigenvalues=NUM_EIGENVALUES)
        with BoundServer(service, port=0) as server:
            server.start()
            http_get(f"{server.url}/healthz")
        assert obs.global_registry().get("repro_slow_queries_total").value() == before


class _BlockingTracedService:
    """Stub service: blocks until released, tags answers with a trace id."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.calls: list = []
        self._lock = threading.Lock()

    def submit(self, queries):
        with self._lock:
            self.calls.append(list(queries))
        if not self.release.wait(timeout=30):
            raise TimeoutError("stub service never released")
        return [
            BoundAnswer(
                graph="stub",
                memory_size=int(query.memory_size),
                num_processors=int(query.num_processors),
                normalization=query.normalization,
                bound=1.0,
                raw_value=1.0,
                best_k=None,
                num_vertices=0,
                elapsed_seconds=0.6,
                eig_elapsed_seconds=0.5,
                trace_id="leader-query-trace",
            )
            for query in queries
        ]

    def counters(self):
        return {
            "queries_served": sum(len(call) for call in self.calls),
            "deduped": 0,
            "engines_cached": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "store_hits": 0,
            "mincut_engines_cached": 0,
            "flow_calls": 0,
        }

    def stats(self):
        return dict(self.counters())


class TestCoalescedFollowers:
    def test_followers_report_served_by_and_count_solve_time_once(self):
        """Satellite fix: a coalesced follower must not re-report the
        leader's eigensolve time as its own — it advertises
        ``served_by_trace_id`` and ``eig_elapsed_seconds == 0``."""
        obs.disable()
        service = _BlockingTracedService()
        payload = json.dumps(
            {"queries": [{"graph": {"family": "fft", "size": 3}, "memory_size": 4}]}
        ).encode()
        with BoundServer(service, port=0) as server:
            server.start()
            outcomes: list = []

            def post():
                request = urllib.request.Request(
                    f"{server.url}/v1/bounds",
                    data=payload,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    outcomes.append(json.loads(response.read().decode()))

            leader = threading.Thread(target=post, daemon=True)
            leader.start()
            deadline = 50
            while len(service.calls) < 1 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert service.calls, "leader never reached the stub service"
            followers = [threading.Thread(target=post, daemon=True) for _ in range(2)]
            for thread in followers:
                thread.start()
            deadline = 500
            while server.coalescer.coalesced < 2 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert server.coalescer.coalesced == 2
            service.release.set()
            for thread in [leader] + followers:
                thread.join(timeout=10)
        assert len(service.calls) == 1  # the herd paid one solve
        answers = [o["answers"][0] for o in outcomes]
        leaders = [a for a in answers if a["served_by_trace_id"] is None]
        borrowed = [a for a in answers if a["served_by_trace_id"] is not None]
        assert len(leaders) == 1 and len(borrowed) == 2
        assert leaders[0]["eig_elapsed_seconds"] == 0.5
        for answer in borrowed:
            assert answer["served_by_trace_id"] == "leader-query-trace"
            assert answer["eig_elapsed_seconds"] == 0.0
            # The solve they rode is still identified for aggregation.
            assert answer["trace_id"] == "leader-query-trace"


# ---------------------------------------------------------------------------
# head-based sampling + slow-query retention
# ---------------------------------------------------------------------------
class TestSampling:
    def test_default_rate_keeps_everything(self, tmp_path, monkeypatch):
        monkeypatch.delenv(obs.tracing.SAMPLE_ENV_VAR, raising=False)
        path = tmp_path / "t.jsonl"
        obs.configure(str(path))
        for _ in range(5):
            with obs.span("request"):
                pass
        obs.disable()
        assert len(read_spans(path)) == 5

    def test_rate_zero_drops_all_traces_without_io(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(str(path), sample_rate=0.0)
        for _ in range(5):
            with obs.span("request") as root:
                with obs.span("solve"):
                    pass
                assert root.trace_id is not None  # ids stay meaningful
        obs.disable()
        assert read_spans(path) == []
        tracer_stats = {"roots": 5, "sampled": 0, "unsampled": 5, "slow_kept": 0}
        # stats were on the tracer we just closed; re-derive from a fresh one
        obs.configure(str(tmp_path / "u.jsonl"), sample_rate=0.0)
        for _ in range(5):
            with obs.span("request"):
                pass
        assert obs.get_tracer().sampling_stats() == tracer_stats

    def test_sampling_decision_rides_the_context(self, tmp_path):
        obs.configure(str(tmp_path / "t.jsonl"), sample_rate=0.0)
        with obs.span("request"):
            context = obs.current_context()
            assert context.sampled is False
            with obs.span("child"):
                assert obs.current_context().sampled is False

    def test_slow_root_keeps_the_whole_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(str(path), sample_rate=0.0, slow_keep_seconds=0.02)
        with obs.span("fast"):
            with obs.span("fast_child"):
                pass
        with obs.span("slow"):
            with obs.span("slow_child"):
                time.sleep(0.03)
        obs.disable()
        spans = read_spans(path)
        assert sorted(s["name"] for s in spans) == ["slow", "slow_child"]
        child, root = (
            next(s for s in spans if s["name"] == "slow_child"),
            next(s for s in spans if s["name"] == "slow"),
        )
        assert child["parent_id"] == root["span_id"]

    def test_seeded_sampler_is_deterministic(self, tmp_path):
        def kept(path):
            obs.configure(str(path), sample_rate=0.3, sample_seed=1234)
            for index in range(40):
                with obs.span("request", index=index):
                    pass
            obs.disable()
            return [s["attrs"]["index"] for s in read_spans(path)]

        first = kept(tmp_path / "a.jsonl")
        second = kept(tmp_path / "b.jsonl")
        assert first == second
        assert 0 < len(first) < 40  # sampled out most, kept some

    def test_slow_queries_survive_aggressive_sampling(self, tmp_path):
        """The acceptance shape: REPRO_TRACE_SAMPLE=0.1 with a slow-query
        threshold keeps every slow trace while dropping most of the rest."""
        path = tmp_path / "t.jsonl"
        obs.configure(
            str(path), sample_rate=0.1, sample_seed=7, slow_keep_seconds=0.02
        )
        for index in range(30):
            with obs.span("request", index=index, kind="fast"):
                pass
        for index in range(3):
            with obs.span("request", index=index, kind="slow"):
                time.sleep(0.03)
        stats = obs.get_tracer().sampling_stats()
        obs.disable()
        spans = read_spans(path)
        slow = [s for s in spans if s["attrs"]["kind"] == "slow"]
        fast = [s for s in spans if s["attrs"]["kind"] == "fast"]
        assert len(slow) == 3  # every slow query kept, sampled or not
        assert len(fast) < 30  # most of the fast traffic sampled out
        assert stats["roots"] == 33
        assert stats["slow_kept"] >= 1

    def test_pending_buffer_is_bounded(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(str(path), sample_rate=0.0, slow_keep_seconds=0.01)
        with obs.span("burst") as root:
            for index in range(obs.tracing.PENDING_CAPACITY + 50):
                with obs.span("child", index=index):
                    pass
            time.sleep(0.02)  # cross the slow threshold: buffer flushes
        obs.disable()
        spans = read_spans(path)
        children = [s for s in spans if s["name"] == "child"]
        assert len(children) == obs.tracing.PENDING_CAPACITY  # oldest dropped
        assert children[-1]["attrs"]["index"] == obs.tracing.PENDING_CAPACITY + 49

    def test_sample_rate_from_env_parsing(self, monkeypatch):
        cases = [
            (None, 1.0), ("", 1.0), ("garbage", 1.0),
            ("0.25", 0.25), ("7", 1.0), ("-3", 0.0),
        ]
        for raw, expected in cases:
            if raw is None:
                monkeypatch.delenv(obs.tracing.SAMPLE_ENV_VAR, raising=False)
            else:
                monkeypatch.setenv(obs.tracing.SAMPLE_ENV_VAR, raw)
            assert obs.sample_rate_from_env() == expected

    def test_unsampled_worker_context_stays_silent_on_disk(self, tmp_path):
        base = str(tmp_path / "trace.jsonl")
        parent = obs.TraceContext(
            trace_id="t" * 16, span_id="s" * 16, sampled=False
        )
        obs.worker_configure(parent, base)
        with obs.span("task"):
            pass
        obs.disable()
        # The unsampled worker buffered without shard I/O and dropped at
        # close — nothing to merge.
        assert obs.merge_shards(base, base) == 0


# ---------------------------------------------------------------------------
# profiling hooks
# ---------------------------------------------------------------------------
class TestProfiling:
    def test_noop_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        base = str(tmp_path / "trace.jsonl")
        with obs.maybe_profile(base, "task-0"):
            sum(range(100))
        assert list(tmp_path.iterdir()) == []
        assert not obs.profiling_enabled()

    def test_noop_with_no_base_even_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        with obs.maybe_profile(None, "task-0"):
            sum(range(100))
        assert list(tmp_path.iterdir()) == []

    def test_pooled_sweep_writes_parseable_pstats(self, tmp_path, monkeypatch):
        import pstats

        monkeypatch.setenv("REPRO_PROFILE", "1")
        path = tmp_path / "trace.jsonl"
        obs.configure(str(path))
        report = SweepOrchestrator(
            store=tmp_path / "spectra", processes=2, num_eigenvalues=NUM_EIGENVALUES
        ).run_family("fft", None, [3, 4], [4])
        obs.disable()
        profiles = sorted(tmp_path.glob("trace.jsonl.profile-*.pstats"))
        # One profile per pool task (plus possibly the parent's phases).
        assert len(profiles) >= len(report.tasks)
        for profile in profiles:
            stats = pstats.Stats(str(profile))  # parseable == loadable
            assert stats.total_calls > 0


# ---------------------------------------------------------------------------
# machine-readable report
# ---------------------------------------------------------------------------
class TestReportJson:
    def test_report_as_json_mirrors_text_views(self):
        spans = [
            synthetic_span("sweep", "root", None, 0.0, 1.0),
            synthetic_span("task", "t1", "root", 0.1, 0.4),
            synthetic_span("eigensolve", "e1", "t1", 0.2, 0.3, backend="dense"),
        ]
        data = report_as_json(spans)
        assert data["num_spans"] == 3
        assert data["num_traces"] == 1
        [tree] = data["trees"]
        assert tree["name"] == "sweep"
        [task] = tree["children"]
        assert task["name"] == "task"
        assert task["children"][0]["attrs"]["backend"] == "dense"
        names = {row["name"]: row for row in data["self_times"]}
        assert names["sweep"]["self_seconds"] == pytest.approx(0.6)
        assert names["eigensolve"]["total_seconds"] == pytest.approx(0.3)
        json.dumps(data)  # the whole payload is JSON-serialisable

    def test_cli_obs_report_json(self, tmp_path, capsys):
        from repro.runtime.cli import main

        path = tmp_path / "t.jsonl"
        obs.configure(str(path))
        with obs.span("root"):
            with obs.span("child"):
                pass
        obs.disable()
        assert main(["obs", "report", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_spans"] == 2
        assert data["trees"][0]["children"][0]["name"] == "child"
