"""Tests for the parallel model (assignments, per-processor I/O, Theorem 6)."""

from __future__ import annotations

import pytest

from repro.core.bounds import parallel_spectral_bound
from repro.graphs.generators import chain_graph, fft_graph, inner_product_graph
from repro.parallel.assignment import (
    contiguous_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.parallel.bound import max_processor_simulated_io, parallel_io_per_processor


class TestAssignments:
    def test_contiguous_balanced(self):
        g = fft_graph(3)
        assignment = contiguous_assignment(g, 4)
        loads = assignment.load()
        assert sum(loads) == g.num_vertices
        assert max(loads) - min(loads) <= 1

    def test_round_robin_balanced(self):
        g = fft_graph(3)
        assignment = round_robin_assignment(g, 3)
        loads = assignment.load()
        assert sum(loads) == g.num_vertices
        assert max(loads) - min(loads) <= 1

    def test_random_assignment_covers_all_vertices(self):
        g = fft_graph(3)
        assignment = random_assignment(g, 4, seed=0)
        assert len(assignment.processor_of) == g.num_vertices
        assert set(assignment.processor_of) <= set(range(4))

    def test_vertices_of_partition(self):
        g = inner_product_graph(3)
        assignment = contiguous_assignment(g, 2)
        all_vertices = sorted(assignment.vertices_of(0) + assignment.vertices_of(1))
        assert all_vertices == list(g.vertices())
        with pytest.raises(ValueError):
            assignment.vertices_of(5)

    def test_single_processor_owns_everything(self):
        g = chain_graph(5)
        assignment = contiguous_assignment(g, 1)
        assert assignment.vertices_of(0) == list(g.vertices())

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            contiguous_assignment(chain_graph(3), 0)


class TestPerProcessorIO:
    def test_single_processor_matches_sequential_simulation(self):
        from repro.graphs.orders import natural_topological_order
        from repro.pebbling.simulator import simulate_order

        g = fft_graph(3)
        assignment = contiguous_assignment(g, 1)
        per_proc = parallel_io_per_processor(g, assignment, M=4)
        assert len(per_proc) == 1
        sequential = simulate_order(g, natural_topological_order(g), M=4)
        assert per_proc[0].local_io == sequential.total_io
        assert per_proc[0].received_values == 0
        assert per_proc[0].sent_values == 0

    def test_round_robin_communicates_more_than_contiguous_on_chain(self):
        # On a chain, contiguous blocks cross p-1 edges while round-robin
        # crosses almost every edge — the canonical locality contrast.
        g = chain_graph(40)
        contiguous = parallel_io_per_processor(g, contiguous_assignment(g, 4), M=4)
        scattered = parallel_io_per_processor(g, round_robin_assignment(g, 4), M=4)
        assert sum(p.received_values for p in contiguous) == 3
        assert sum(p.received_values for p in scattered) > sum(
            p.received_values for p in contiguous
        )

    def test_max_processor_io(self):
        g = fft_graph(3)
        assignment = contiguous_assignment(g, 2)
        worst = max_processor_simulated_io(g, assignment, M=4)
        per_proc = parallel_io_per_processor(g, assignment, M=4)
        assert worst == max(p.total_io for p in per_proc)

    def test_mismatched_assignment_rejected(self):
        g = fft_graph(3)
        other = contiguous_assignment(fft_graph(2), 2)
        with pytest.raises(ValueError):
            parallel_io_per_processor(g, other, M=4)


class TestTheorem6Consistency:
    def test_lower_bound_below_constructed_upper_bound(self):
        """Theorem 6 (worst-processor lower bound) must stay below the worst
        per-processor I/O of a concrete distributed execution."""
        g = fft_graph(5)
        for p in (1, 2, 4):
            lower = parallel_spectral_bound(g, M=4, num_processors=p, num_eigenvalues=60)
            assignment = contiguous_assignment(g, p)
            upper = max_processor_simulated_io(g, assignment, M=4)
            assert lower.value <= upper + 1e-9

    def test_parallel_bound_decreases_with_processors(self):
        g = fft_graph(6)
        b1 = parallel_spectral_bound(g, M=4, num_processors=1, num_eigenvalues=40).value
        b4 = parallel_spectral_bound(g, M=4, num_processors=4, num_eigenvalues=40).value
        assert b4 <= b1
