"""Unit tests for evaluation orders and permutation matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import fft_graph, inner_product_graph
from repro.graphs.orders import (
    all_topological_orders,
    count_topological_orders,
    dfs_topological_order,
    is_topological_order,
    natural_topological_order,
    order_to_schedule_positions,
    permutation_matrix,
    priority_topological_order,
    random_topological_order,
)


def chain(n: int) -> ComputationGraph:
    g = ComputationGraph(n)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


class TestValidation:
    def test_valid_order(self):
        g = chain(4)
        assert is_topological_order(g, [0, 1, 2, 3])

    def test_invalid_order_wrong_sequence(self):
        g = chain(4)
        assert not is_topological_order(g, [1, 0, 2, 3])

    def test_invalid_order_wrong_length(self):
        g = chain(3)
        assert not is_topological_order(g, [0, 1])
        assert not is_topological_order(g, [0, 1, 1])


class TestOrderGenerators:
    @pytest.mark.parametrize("maker", [natural_topological_order, dfs_topological_order])
    def test_orders_are_topological(self, maker):
        g = fft_graph(3)
        assert is_topological_order(g, maker(g))

    def test_random_order_topological_and_seeded(self):
        g = fft_graph(3)
        o1 = random_topological_order(g, seed=7)
        o2 = random_topological_order(g, seed=7)
        o3 = random_topological_order(g, seed=8)
        assert is_topological_order(g, o1)
        assert o1 == o2
        assert is_topological_order(g, o3)

    def test_priority_order_respects_priority(self):
        # Two independent chains; priority prefers higher ids first.
        g = ComputationGraph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        order = priority_topological_order(g, priority=lambda v: -v)
        assert order[0] == 2  # highest-priority ready vertex
        assert is_topological_order(g, order)

    def test_cycle_raises(self):
        g = ComputationGraph(2)
        g.add_edge(0, 1)
        g._succ[1].append(0)  # force a cycle bypassing duplicate checks
        g._pred[0].append(1)
        with pytest.raises(ValueError):
            priority_topological_order(g, priority=lambda v: v)


class TestEnumeration:
    def test_all_orders_of_independent_vertices(self):
        g = ComputationGraph(3)  # no edges: 3! orders
        orders = list(all_topological_orders(g))
        assert len(orders) == 6
        assert len({tuple(o) for o in orders}) == 6

    def test_all_orders_of_chain_is_unique(self):
        assert count_topological_orders(chain(5)) == 1

    def test_limit_respected(self):
        g = ComputationGraph(4)
        orders = list(all_topological_orders(g, limit=5))
        assert len(orders) == 5

    def test_diamond_order_count(self):
        g = ComputationGraph(4)
        g.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert count_topological_orders(g) == 2

    def test_inner_product_orders_all_valid(self):
        g = inner_product_graph(2)
        for order in all_topological_orders(g, limit=200):
            assert is_topological_order(g, order)


class TestPermutationMatrix:
    def test_shape_and_content(self):
        X = permutation_matrix([2, 0, 1])
        assert X.shape == (3, 3)
        # vertex 2 at time 0, vertex 0 at time 1, vertex 1 at time 2
        assert X[0, 2] == 1 and X[1, 0] == 1 and X[2, 1] == 1
        assert X.sum() == 3

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_matrix([0, 0, 1])

    def test_is_orthogonal(self):
        X = permutation_matrix([3, 1, 0, 2])
        np.testing.assert_allclose(X @ X.T, np.eye(4))
        np.testing.assert_allclose(X.T @ X, np.eye(4))

    def test_reorders_vectors(self):
        order = [2, 0, 1]
        X = permutation_matrix(order)
        y = np.array([10.0, 20.0, 30.0])
        np.testing.assert_allclose(X @ y, [30.0, 10.0, 20.0])

    def test_positions_inverse(self):
        order = [2, 0, 3, 1]
        pos = order_to_schedule_positions(order)
        for t, v in enumerate(order):
            assert pos[v] == t
