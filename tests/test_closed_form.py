"""Tests for the closed-form analytical bounds of Section 5."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import spectral_bound_unnormalized
from repro.core.closed_form import (
    erdos_renyi_io_bound,
    fft_exact_theorem5_bound,
    fft_io_bound,
    fft_io_bound_asymptotic,
    hypercube_io_bound,
    hypercube_io_bound_alpha1,
    published_fft_bound,
    published_naive_matmul_bound,
    published_strassen_bound,
)
from repro.graphs.generators import bellman_held_karp_graph, fft_graph


class TestHypercubeBound:
    def test_alpha1_formula(self):
        l, M = 10, 4
        expected = 2.0 ** (l + 1) / (l + 1) - 2 * M * (l + 1)
        assert hypercube_io_bound_alpha1(l, M) == pytest.approx(expected)
        assert hypercube_io_bound(l, M, alpha=1).raw_value == pytest.approx(expected)

    def test_nontrivial_condition(self):
        """The paper: the alpha=1 bound is non-trivial iff M <= 2^l/(l+1)^2."""
        l = 10
        threshold = 2**l / (l + 1) ** 2
        assert hypercube_io_bound_alpha1(l, math.floor(threshold)) > 0
        assert hypercube_io_bound_alpha1(l, math.ceil(threshold) + 1) <= 0

    def test_optimised_alpha_at_least_alpha1(self):
        result = hypercube_io_bound(12, 8)
        assert result.raw_value >= hypercube_io_bound(12, 8, alpha=1).raw_value - 1e-9

    def test_monotone_in_memory(self):
        values = [hypercube_io_bound(12, M).value for M in (4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_closed_form_is_a_valid_lower_bound_for_numeric_spectral(self):
        """The closed form instantiates Theorem 5 with a *subset* of the true
        eigenvalue mass, so the numerically optimised Theorem-5 bound on the
        same graph must dominate it (up to the closed form's use of ``n/k`` in
        place of ``floor(n/k)``, which can add at most ``2i_max`` per level)."""
        l, M = 9, 4
        graph = bellman_held_karp_graph(l)
        numeric = spectral_bound_unnormalized(graph, M, num_eigenvalues=graph.num_vertices)
        closed = hypercube_io_bound(l, M)
        assert numeric.raw_value >= closed.raw_value - 2.0 * l

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            hypercube_io_bound(5, 2, alpha=5)

    def test_grows_exponentially_in_l(self):
        small = hypercube_io_bound(10, 4).value
        large = hypercube_io_bound(14, 4).value
        assert large > 8 * small > 0


class TestFFTBound:
    def test_paper_alpha_choice(self):
        l, M = 12, 4
        alpha = l - math.ceil(math.log2(M))
        result = fft_io_bound(l, M, alpha=alpha)
        expected = (l + 1) * 2.0**l * (
            1 - math.cos(math.pi / (2 * (l - alpha) + 1))
        ) - 2.0 ** (alpha + 2) * M
        assert result.raw_value == pytest.approx(expected)

    def test_default_optimises_over_alpha(self):
        auto = fft_io_bound(12, 4)
        fixed = fft_io_bound(12, 4, alpha=5)
        assert auto.raw_value >= fixed.raw_value - 1e-9

    def test_positive_in_paper_regime(self):
        assert fft_io_bound(14, 4).value > 0
        assert fft_io_bound(16, 8).value > 0

    def test_asymptotic_formula(self):
        """The asymptotic form is the literal expression from §5.2."""
        l, M = 20, 16
        expected = (l + 1) * 2.0**l * (
            math.pi**2 / (8.0 * math.log2(M) ** 2) - 4.0 / (l + 1)
        )
        assert fft_io_bound_asymptotic(l, M) == pytest.approx(expected)

    def test_asymptotic_positive_in_its_regime(self):
        """Positive once l + 1 exceeds ~32 log2^2(M) / pi^2 (M << l regime)."""
        assert fft_io_bound_asymptotic(60, 16) > 0
        assert fft_io_bound_asymptotic(20, 4) > 0
        assert fft_io_bound_asymptotic(10, 16) < 0  # outside the regime

    def test_exact_theorem5_dominates_simplified_closed_form(self):
        l, M = 8, 4
        assert fft_exact_theorem5_bound(l, M) >= fft_io_bound(l, M).value - 1e-9

    def test_exact_theorem5_matches_numeric_spectral(self):
        l, M = 6, 4
        graph = fft_graph(l)
        numeric = spectral_bound_unnormalized(graph, M, num_eigenvalues=graph.num_vertices)
        closed = fft_exact_theorem5_bound(l, M)
        assert closed == pytest.approx(max(0.0, numeric.raw_value), rel=1e-6, abs=1e-6)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            fft_io_bound(5, 4, alpha=7)

    def test_asymptotic_requires_m_at_least_2(self):
        with pytest.raises(ValueError):
            fft_io_bound_asymptotic(10, 1)

    def test_weaker_than_published_tight_bound_but_growing(self):
        """§5.2: the spectral closed form sits below the tight Hong-Kung bound
        (it is a lower bound that is a log-factor weaker) and keeps growing
        with the problem size."""
        M = 4
        values = []
        for l in (14, 16, 18, 20):
            value = fft_io_bound(l, M).value
            assert 0 < value < published_fft_bound(l, M)
            values.append(value)
        assert all(a < b for a, b in zip(values, values[1:]))


class TestPublishedBounds:
    def test_fft_growth(self):
        assert published_fft_bound(10, 4) == pytest.approx(10 * 1024 / 2)

    def test_matmul_growth(self):
        assert published_naive_matmul_bound(8, 16) == pytest.approx(512 / 4)

    def test_strassen_growth(self):
        value = published_strassen_bound(8, 4)
        assert value == pytest.approx((8 / 2) ** math.log2(7) * 4)


class TestErdosRenyi:
    def test_dense_regime_formula(self):
        assert erdos_renyi_io_bound(1000, 0.5, 10, regime="dense") == pytest.approx(500 - 40)

    def test_sparse_regime_positive_for_large_p0(self):
        n = 5000
        p = 20 * math.log(n) / (n - 1)  # p0 = 20 > 6
        assert erdos_renyi_io_bound(n, p, 4, regime="sparse") > 0

    def test_sparse_regime_trivial_below_threshold(self):
        n = 1000
        p = 2 * math.log(n) / (n - 1)  # p0 = 2 < 6: concentration fails
        assert erdos_renyi_io_bound(n, p, 4, regime="sparse") == 0.0

    def test_auto_regime_selection(self):
        n = 2000
        sparse_p = 8 * math.log(n) / n
        dense_p = 0.3
        assert erdos_renyi_io_bound(n, sparse_p, 4) == pytest.approx(
            erdos_renyi_io_bound(n, sparse_p, 4, regime="sparse")
        )
        assert erdos_renyi_io_bound(n, dense_p, 4) == pytest.approx(
            erdos_renyi_io_bound(n, dense_p, 4, regime="dense")
        )

    def test_edge_cases(self):
        assert erdos_renyi_io_bound(2, 0.5, 4) == 0.0
        assert erdos_renyi_io_bound(100, 0.0, 4) == 0.0
        with pytest.raises(ValueError):
            erdos_renyi_io_bound(100, 0.5, 4, regime="bogus")

    def test_scales_linearly_with_n_in_dense_regime(self):
        small = erdos_renyi_io_bound(1000, 0.5, 1, regime="dense")
        large = erdos_renyi_io_bound(4000, 0.5, 1, regime="dense")
        assert large / small == pytest.approx(4.0, rel=0.05)
