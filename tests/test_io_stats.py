"""Tests for graph serialization and descriptive statistics."""

from __future__ import annotations

import pytest

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import fft_graph, inner_product_graph
from repro.graphs.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_graph_npz,
    save_graph,
    save_graph_npz,
)
from repro.graphs.stats import graph_stats


class TestSerialization:
    def test_dict_round_trip(self):
        g = inner_product_graph(3)
        data = graph_to_dict(g)
        back = graph_from_dict(data)
        assert back.num_vertices == g.num_vertices
        assert sorted(back.edges()) == sorted(g.edges())
        assert back.label(0) == g.label(0)
        assert back.op(0) == g.op(0)

    def test_file_round_trip(self, tmp_path):
        g = fft_graph(3)
        path = tmp_path / "graph.json"
        save_graph(g, path)
        back = load_graph(path)
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            graph_from_dict({"format_version": 99, "num_vertices": 0, "edges": []})

    def test_dict_is_json_serialisable(self):
        import json

        text = json.dumps(graph_to_dict(inner_product_graph(2)))
        assert "edges" in text

    def test_from_dict_preserves_structure_exactly(self):
        g = fft_graph(3)
        back = graph_from_dict(graph_to_dict(g))
        assert back.fingerprint() == g.fingerprint()
        assert back == g

    def test_empty_graph_round_trips(self):
        back = graph_from_dict(graph_to_dict(ComputationGraph()))
        assert back.num_vertices == 0 and back.num_edges == 0


class TestNpzSerialization:
    def test_round_trip_structure_and_metadata(self, tmp_path):
        g = inner_product_graph(3)
        path = tmp_path / "graph.npz"
        save_graph_npz(g, path)
        back = load_graph_npz(path)
        assert back.fingerprint() == g.fingerprint()
        assert back.num_edges == g.num_edges
        for v in g.vertices():
            assert back.label(v) == g.label(v)
            assert back.op(v) == g.op(v)

    def test_round_trip_without_metadata(self, tmp_path):
        g = ComputationGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "bare.npz"
        save_graph_npz(g, path)
        back = load_graph_npz(path)
        assert back == g

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_graph_npz(ComputationGraph(), path)
        back = load_graph_npz(path)
        assert back.num_vertices == 0 and back.num_edges == 0

    def test_no_pickle_needed(self, tmp_path):
        import numpy as np

        g = fft_graph(3)
        path = tmp_path / "graph.npz"
        save_graph_npz(g, path)
        with np.load(path, allow_pickle=False) as data:
            assert int(data["num_vertices"]) == 32
            assert data["edges"].shape == (48, 2)


class TestStats:
    def test_inner_product_stats(self):
        stats = graph_stats(inner_product_graph(2))
        assert stats.num_vertices == 7
        assert stats.num_inputs == 4
        assert stats.num_outputs == 1
        assert stats.max_in_degree == 2
        assert stats.critical_path_length == 2
        assert stats.weakly_connected

    def test_fft_stats(self):
        stats = graph_stats(fft_graph(3))
        assert stats.num_vertices == 32
        assert stats.num_edges == 48
        assert stats.max_out_degree == 2
        assert stats.mean_in_degree == pytest.approx(48 / 32)

    def test_empty_graph_stats(self):
        from repro.graphs.compgraph import ComputationGraph

        stats = graph_stats(ComputationGraph())
        assert stats.num_vertices == 0
        assert stats.mean_in_degree == 0.0

    def test_as_dict_and_str(self):
        stats = graph_stats(inner_product_graph(2))
        data = stats.as_dict()
        assert data["num_vertices"] == 7
        assert "n=7" in str(stats)
