"""Unit tests for Laplacian / adjacency construction (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.partitions import weighted_edge_boundary
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import fft_graph, inner_product_graph
from repro.graphs.laplacian import (
    adjacency_matrix,
    degree_vector,
    laplacian,
    laplacian_quadratic_form,
    normalized_laplacian,
    undirected_weights,
)


def small_graph() -> ComputationGraph:
    """v0 -> v2, v1 -> v2, v2 -> v3 (out-degrees 1, 1, 1, 0)."""
    g = ComputationGraph(4)
    g.add_edges([(0, 2), (1, 2), (2, 3)])
    return g


class TestWeights:
    def test_unnormalized_weights_are_one(self):
        w = undirected_weights(small_graph(), normalized=False)
        assert all(v == 1.0 for v in w.values())
        assert len(w) == 3

    def test_normalized_weights_use_out_degree(self):
        g = ComputationGraph(3)
        g.add_edges([(0, 1), (0, 2)])  # out-degree of 0 is 2
        w = undirected_weights(g, normalized=True)
        assert w[(0, 1)] == pytest.approx(0.5)
        assert w[(0, 2)] == pytest.approx(0.5)


class TestAdjacency:
    def test_symmetric_by_default(self):
        A = adjacency_matrix(small_graph())
        np.testing.assert_allclose(A, A.T)

    def test_directed_adjacency(self):
        A = adjacency_matrix(small_graph(), directed=True)
        assert A[0, 2] == 1.0 and A[2, 0] == 0.0

    def test_sparse_matches_dense(self):
        g = fft_graph(3)
        dense = adjacency_matrix(g, normalized=True)
        sparse = adjacency_matrix(g, normalized=True, sparse=True)
        assert sp.issparse(sparse)
        np.testing.assert_allclose(np.asarray(sparse.todense()), dense)

    def test_degree_vector_matches_adjacency_row_sums(self):
        g = fft_graph(3)
        A = adjacency_matrix(g, normalized=True)
        np.testing.assert_allclose(degree_vector(g, normalized=True), A.sum(axis=1))


class TestLaplacian:
    @pytest.mark.parametrize("normalized", [True, False])
    def test_row_sums_zero(self, normalized):
        L = laplacian(small_graph(), normalized=normalized)
        np.testing.assert_allclose(L.sum(axis=1), 0.0, atol=1e-12)

    @pytest.mark.parametrize("normalized", [True, False])
    def test_symmetric_psd(self, normalized):
        L = laplacian(fft_graph(3), normalized=normalized)
        np.testing.assert_allclose(L, L.T)
        eigenvalues = np.linalg.eigvalsh(L)
        assert eigenvalues.min() >= -1e-9

    def test_sparse_matches_dense(self):
        g = inner_product_graph(4)
        dense = laplacian(g, normalized=True)
        sparse = laplacian(g, normalized=True, sparse=True)
        np.testing.assert_allclose(np.asarray(sparse.todense()), dense)

    def test_normalized_alias(self):
        g = small_graph()
        np.testing.assert_allclose(normalized_laplacian(g), laplacian(g, normalized=True))

    def test_zero_eigenvalue_for_connected_graph(self):
        L = laplacian(fft_graph(2), normalized=True)
        eigenvalues = np.sort(np.linalg.eigvalsh(L))
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-9)
        assert eigenvalues[1] > 1e-6  # connected: single zero eigenvalue

    def test_number_of_zero_eigenvalues_equals_components(self):
        g = ComputationGraph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        eigenvalues = np.sort(np.linalg.eigvalsh(laplacian(g, normalized=True)))
        assert np.sum(np.abs(eigenvalues) < 1e-9) == 2


class TestQuadraticForm:
    """Equation 3: x^T L~ x equals the out-degree-weighted edge boundary."""

    @pytest.mark.parametrize("normalized", [True, False])
    def test_indicator_quadratic_form_equals_boundary(self, normalized):
        g = fft_graph(3)
        L = laplacian(g, normalized=normalized)
        rng = np.random.default_rng(0)
        for _ in range(10):
            subset = [int(v) for v in rng.choice(g.num_vertices, size=10, replace=False)]
            x = np.zeros(g.num_vertices)
            x[subset] = 1.0
            expected = weighted_edge_boundary(g, subset, normalized=normalized)
            assert laplacian_quadratic_form(L, x) == pytest.approx(expected)

    def test_quadratic_form_sparse(self):
        g = fft_graph(3)
        L = laplacian(g, normalized=True, sparse=True)
        x = np.zeros(g.num_vertices)
        x[:8] = 1.0
        expected = weighted_edge_boundary(g, list(range(8)), normalized=True)
        assert laplacian_quadratic_form(L, x) == pytest.approx(expected)
