"""Property-based tests (hypothesis) for the core invariants.

Random DAGs are generated from (seed, size, density) triples; every property
must hold for *all* of them:

* Laplacians are symmetric PSD with zero row sums (Eq. 3 substrate);
* the quadratic-form identity of Equation 3;
* spectral bounds are non-negative, monotone non-increasing in ``M``,
  monotone non-increasing in the processor count, and invariant under vertex
  relabelling;
* every lower bound stays below a simulated execution's I/O (soundness);
* the simulator conserves basic quantities (reads bounded by edges, I/O
  monotone in ``M``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import parallel_spectral_bound, spectral_bound
from repro.core.partitions import weighted_edge_boundary
from repro.graphs.generators.random_graphs import random_dag
from repro.graphs.laplacian import laplacian, laplacian_quadratic_form
from repro.graphs.orders import is_topological_order, random_topological_order
from repro.pebbling.simulator import simulate_order

# Shared strategy: (n, edge probability, seed) triples defining a random DAG.
dag_params = st.tuples(
    st.integers(min_value=2, max_value=24),
    st.floats(min_value=0.05, max_value=0.9),
    st.integers(min_value=0, max_value=10_000),
)

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def build(params):
    n, p, seed = params
    return random_dag(n, edge_probability=p, seed=seed)


class TestLaplacianProperties:
    @given(params=dag_params, normalized=st.booleans())
    @common_settings
    def test_laplacian_symmetric_psd_zero_rowsum(self, params, normalized):
        graph = build(params)
        lap = laplacian(graph, normalized=normalized)
        assert np.allclose(lap, lap.T)
        assert np.allclose(lap.sum(axis=1), 0.0, atol=1e-9)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-8

    @given(params=dag_params, normalized=st.booleans(), subset_seed=st.integers(0, 1000))
    @common_settings
    def test_equation3_quadratic_form(self, params, normalized, subset_seed):
        graph = build(params)
        lap = laplacian(graph, normalized=normalized)
        rng = np.random.default_rng(subset_seed)
        size = int(rng.integers(0, graph.num_vertices + 1))
        subset = [int(v) for v in rng.choice(graph.num_vertices, size=size, replace=False)]
        x = np.zeros(graph.num_vertices)
        x[subset] = 1.0
        np.testing.assert_allclose(
            laplacian_quadratic_form(lap, x),
            weighted_edge_boundary(graph, subset, normalized=normalized),
            atol=1e-9,
        )


class TestBoundProperties:
    @given(params=dag_params, memory=st.integers(min_value=2, max_value=64))
    @common_settings
    def test_bound_nonnegative_and_finite(self, params, memory):
        graph = build(params)
        result = spectral_bound(graph, memory, num_eigenvalues=min(20, graph.num_vertices))
        assert result.value >= 0.0
        assert np.isfinite(result.raw_value)

    @given(params=dag_params)
    @common_settings
    def test_bound_monotone_in_memory(self, params):
        graph = build(params)
        values = [
            spectral_bound(graph, M, num_eigenvalues=min(20, graph.num_vertices)).value
            for M in (2, 4, 8, 16)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    @given(params=dag_params, memory=st.integers(min_value=2, max_value=16))
    @common_settings
    def test_parallel_bound_at_most_sequential(self, params, memory):
        graph = build(params)
        h = min(20, graph.num_vertices)
        seq = spectral_bound(graph, memory, num_eigenvalues=h).value
        par = parallel_spectral_bound(graph, memory, num_processors=2, num_eigenvalues=h).value
        assert par <= seq + 1e-9

    @given(params=dag_params, perm_seed=st.integers(0, 10_000))
    @common_settings
    def test_bound_invariant_under_relabelling(self, params, perm_seed):
        graph = build(params)
        rng = np.random.default_rng(perm_seed)
        perm = [int(x) for x in rng.permutation(graph.num_vertices)]
        relabeled = graph.relabeled(perm)
        h = graph.num_vertices
        a = spectral_bound(graph, 4, num_eigenvalues=h).raw_value
        b = spectral_bound(relabeled, 4, num_eigenvalues=h).raw_value
        assert abs(a - b) <= 1e-6 * max(1.0, abs(a))


class TestSoundnessProperties:
    @given(params=dag_params, memory=st.integers(min_value=2, max_value=16), order_seed=st.integers(0, 100))
    @common_settings
    def test_lower_bound_below_any_simulated_execution(self, params, memory, order_seed):
        graph = build(params)
        if graph.max_in_degree + 1 > memory:
            return  # infeasible combination: the model cannot run this graph
        order = random_topological_order(graph, seed=order_seed)
        simulated = simulate_order(graph, order, memory, policy="belady").total_io
        lower = spectral_bound(graph, memory, num_eigenvalues=graph.num_vertices).value
        assert lower <= simulated + 1e-9


class TestSimulatorProperties:
    @given(params=dag_params, memory=st.integers(min_value=2, max_value=32), order_seed=st.integers(0, 100))
    @common_settings
    def test_reads_bounded_by_edges_and_io_nonnegative(self, params, memory, order_seed):
        graph = build(params)
        if graph.max_in_degree + 1 > memory:
            return
        order = random_topological_order(graph, seed=order_seed)
        result = simulate_order(graph, order, memory)
        assert 0 <= result.reads <= graph.num_edges
        assert 0 <= result.writes <= graph.num_vertices
        assert result.max_resident <= memory

    @given(params=dag_params, order_seed=st.integers(0, 100))
    @common_settings
    def test_io_monotone_in_memory(self, params, order_seed):
        graph = build(params)
        base = graph.max_in_degree + 1
        order = random_topological_order(graph, seed=order_seed)
        ios = [
            simulate_order(graph, order, M).total_io for M in (base, base + 2, base + 8)
        ]
        assert ios[0] >= ios[1] >= ios[2]

    @given(params=dag_params)
    @common_settings
    def test_random_orders_are_topological(self, params):
        graph = build(params)
        order = random_topological_order(graph, seed=1)
        assert is_topological_order(graph, order)
