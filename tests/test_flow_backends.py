"""Tests for the reusable flow network and the max-flow backend registry.

The contract every backend must honour: identical ``C(v, G)`` to the
pure-Python Dinic reference on every vertex of every DAG (the cut value is
an exact integer, so parity is equality, not approximation).  On top of it,
the pruning layer must provably never change ``max_v C(v, G)``, and the
caching layers must make warm re-runs flow-free.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.convex_mincut import (
    MinCutEngine,
    convex_min_cut_max_value,
    convex_min_cut_value,
)
from repro.baselines.flow_backends import (
    BACKEND_ENV_VAR,
    ArrayDinicBackend,
    DinicRebuildBackend,
    ScipyMaxFlowBackend,
    available_flow_backends,
    create_flow_backend,
    resolve_flow_backend_id,
)
from repro.baselines.flownet import ConvexCutNetwork
from repro.baselines.maxflow import INFINITE_CAPACITY
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    chain_graph,
    diamond_graph,
    fft_graph,
    hypercube_graph,
    naive_matmul_graph,
)
from repro.graphs.generators.random_graphs import random_dag

ALL_BACKENDS = ("dinic", "array-dinic", "scipy")

dag_params = st.tuples(
    st.integers(min_value=2, max_value=20),
    st.floats(min_value=0.05, max_value=0.8),
    st.integers(min_value=0, max_value=10_000),
)

common_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def build(params):
    n, p, seed = params
    return random_dag(n, edge_probability=p, seed=seed)


def reference_cuts(graph):
    """All C(v, G) via the reference backend (no pruning, no caching)."""
    engine = MinCutEngine(graph, backend="dinic", prune=False)
    return [engine.cut_value(v) for v in graph.vertices()]


class TestNetworkConstruction:
    def test_arc_layout(self):
        g = diamond_graph(3)
        net = ConvexCutNetwork(g)
        n, m = g.num_vertices, g.num_edges
        assert net.num_nodes == 2 * n + 2
        assert net.num_arcs == 2 * n + 2 * m + n
        assert net.arc_tails.shape == net.arc_heads.shape == net.arc_caps.shape
        # Unit arcs split every vertex with capacity 1.
        assert np.array_equal(net.arc_caps[:n], np.ones(n, dtype=np.int64))
        # Structural arcs are uncuttable.
        assert np.all(net.arc_caps[n : n + 2 * m] == INFINITE_CAPACITY)
        # Source/sink slots start absent (capacity 0).
        assert np.all(net.arc_caps[n + 2 * m :] == 0)
        assert np.array_equal(net.arc_tails[net.source_arc], np.full(n, net.source))
        assert np.array_equal(net.arc_heads[net.sink_arc], np.full(n, net.sink))

    def test_arc_arrays_immutable(self):
        net = ConvexCutNetwork(chain_graph(4))
        with pytest.raises(ValueError):
            net.arc_caps[0] = 5

    def test_terminals_match_graph_reachability(self):
        g = fft_graph(3)
        net = ConvexCutNetwork(g)
        for v in (0, 7, 17, g.num_vertices - 1):
            sources, sinks = net.terminals(v)
            assert set(sources.tolist()) == g.ancestors(v) | {v}
            assert set(sinks.tolist()) == g.descendants(v)

    def test_empty_and_edgeless_graphs(self):
        net = ConvexCutNetwork(ComputationGraph())
        assert net.num_arcs == 0 and net.prefix_upper_bounds().shape == (0,)
        net = ConvexCutNetwork(ComputationGraph(3))
        sources, sinks = net.terminals(1)
        assert sources.tolist() == [1] and sinks.tolist() == []
        assert net.prefix_upper_bounds().tolist() == [0, 0, 0]


class TestUpperBounds:
    def test_bounds_dominate_cut_values(self):
        for graph in (chain_graph(6), diamond_graph(4), fft_graph(3)):
            net = ConvexCutNetwork(graph)
            ub = net.prefix_upper_bounds()
            cuts = reference_cuts(graph)
            assert all(int(ub[v]) >= cuts[v] for v in graph.vertices())

    def test_sinks_get_exact_zero(self):
        g = fft_graph(3)
        ub = ConvexCutNetwork(g).prefix_upper_bounds()
        for v in g.sinks():
            assert ub[v] == 0

    def test_chain_bounds_are_tight(self):
        g = chain_graph(5)
        ub = ConvexCutNetwork(g).prefix_upper_bounds()
        assert ub.tolist() == [1, 1, 1, 1, 0]

    @given(params=dag_params)
    @common_settings
    def test_bounds_dominate_on_random_dags(self, params):
        graph = build(params)
        net = ConvexCutNetwork(graph)
        ub = net.prefix_upper_bounds()
        engine = MinCutEngine(graph, backend="array-dinic", prune=False)
        for v in graph.vertices():
            assert int(ub[v]) >= engine.cut_value(v)

    @staticmethod
    def single_prefix_ub(graph):
        """The pre-window-min ceiling: the wavefront of the one prefix
        ending right after v (the loosest point of each vertex's window)."""
        n = graph.num_vertices
        order = np.asarray(graph.topological_order(), dtype=np.int64)
        pos = np.empty(n, dtype=np.int64)
        pos[order] = np.arange(n, dtype=np.int64)
        wavefront = np.zeros(n + 1, dtype=np.int64)
        out_degrees = graph.freeze().out_degrees
        if graph.num_edges:
            a, b = graph.freeze().edge_endpoints()
            last_use = np.full(n, -1, dtype=np.int64)
            np.maximum.at(last_use, a, pos[b])
            live = out_degrees > 0
            np.add.at(wavefront, pos[live.nonzero()[0]], 1)
            np.add.at(wavefront, last_use[live], -1)
            np.cumsum(wavefront, out=wavefront)
        return np.where(out_degrees > 0, wavefront[pos], 0)

    def test_window_min_never_looser_than_single_prefix(self):
        for graph in (chain_graph(6), diamond_graph(4), fft_graph(4),
                      hypercube_graph(3), naive_matmul_graph(2)):
            ub = ConvexCutNetwork(graph).prefix_upper_bounds()
            assert np.all(ub <= self.single_prefix_ub(graph))

    def test_window_min_strictly_tightens_butterfly(self):
        # On the FFT butterfly the wavefront dips inside many vertices'
        # valid windows, so the window minimum must beat the single-prefix
        # ceiling somewhere (this is the ROADMAP "tighter ceiling" item).
        graph = fft_graph(4)
        ub = ConvexCutNetwork(graph).prefix_upper_bounds()
        assert np.any(ub < self.single_prefix_ub(graph))

    @given(params=dag_params)
    @common_settings
    def test_window_min_sandwiched_on_random_dags(self, params):
        """cuts <= window-min ub <= single-prefix ub, vertex by vertex."""
        graph = build(params)
        ub = ConvexCutNetwork(graph).prefix_upper_bounds()
        loose = self.single_prefix_ub(graph)
        engine = MinCutEngine(graph, backend="array-dinic", prune=False)
        for v in graph.vertices():
            assert engine.cut_value(v) <= int(ub[v]) <= int(loose[v])

    def test_candidate_order_is_descending_ub(self):
        g = fft_graph(3)
        net = ConvexCutNetwork(g)
        ordered = net.candidate_order(np.arange(g.num_vertices))
        ub = net.prefix_upper_bounds()
        values = ub[ordered]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestBackendParity:
    @pytest.mark.parametrize("backend_id", ALL_BACKENDS)
    def test_closed_form_families(self, backend_id):
        for graph in (chain_graph(6), diamond_graph(4), fft_graph(3),
                      hypercube_graph(3), naive_matmul_graph(2)):
            expected = reference_cuts(graph)
            engine = MinCutEngine(graph, backend=backend_id, prune=False)
            assert [engine.cut_value(v) for v in graph.vertices()] == expected

    @given(params=dag_params)
    @common_settings
    def test_random_dag_parity(self, params):
        """All backends agree with the reference Dinic on every vertex."""
        graph = build(params)
        expected = reference_cuts(graph)
        for backend_id in ("array-dinic", "scipy"):
            engine = MinCutEngine(graph, backend=backend_id, prune=False)
            got = [engine.cut_value(v) for v in graph.vertices()]
            assert got == expected, f"backend {backend_id} disagrees"

    @given(params=dag_params)
    @common_settings
    def test_pruned_max_equals_exhaustive_max(self, params):
        """The acceptance criterion: pruning never changes max_v C(v, G)."""
        graph = build(params)
        exhaustive, _ = convex_min_cut_max_value(graph, prune=False, backend="dinic")
        for backend_id in ALL_BACKENDS:
            engine = MinCutEngine(graph, backend=backend_id, prune=True)
            pruned_max, witness = engine.max_cut()
            assert pruned_max == exhaustive
            assert witness is not None

    def test_persistent_backend_state_is_reset_between_solves(self):
        """Back-to-back solves on one backend instance must not leak residual
        capacities or stale source/sink attachments."""
        g = fft_graph(3)
        expected = reference_cuts(g)
        for backend_id in ("array-dinic", "scipy"):
            net = ConvexCutNetwork(g)
            backend = create_flow_backend(backend_id, net)
            for _ in range(2):  # second pass hits the same instance again
                for v in g.vertices():
                    if not net.has_descendants(v):
                        continue
                    sources, sinks = net.terminals(v)
                    assert backend.min_cut(sources, sinks) == expected[v]

    def test_flow_calls_counter(self):
        g = diamond_graph(3)
        net = ConvexCutNetwork(g)
        backend = create_flow_backend("array-dinic", net)
        assert backend.flow_calls == 0
        sources, sinks = net.terminals(0)
        backend.min_cut(sources, sinks)
        backend.min_cut(sources, sinks)
        assert backend.flow_calls == 2


class TestRegistry:
    def test_available_backends(self):
        assert set(ALL_BACKENDS) <= set(available_flow_backends())

    def test_explicit_ids_resolve(self):
        for backend_id in ALL_BACKENDS:
            assert resolve_flow_backend_id(backend_id) == backend_id

    def test_auto_prefers_scipy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_flow_backend_id(None) == "scipy"
        assert resolve_flow_backend_id("auto") == "scipy"

    def test_env_var_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "dinic")
        assert resolve_flow_backend_id(None) == "dinic"
        # Explicit ids beat the environment.
        assert resolve_flow_backend_id("scipy") == "scipy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown max-flow backend"):
            resolve_flow_backend_id("nope")

    def test_create_returns_registered_classes(self):
        net = ConvexCutNetwork(chain_graph(3))
        assert isinstance(create_flow_backend("dinic", net), DinicRebuildBackend)
        assert isinstance(create_flow_backend("array-dinic", net), ArrayDinicBackend)
        assert isinstance(create_flow_backend("scipy", net), ScipyMaxFlowBackend)


class TestMinCutEngine:
    def test_memory_cache_makes_repeat_queries_flow_free(self):
        engine = MinCutEngine(fft_graph(3))
        first, witness = engine.max_cut()
        flows = engine.flow_calls
        assert flows > 0
        again, witness_again = engine.max_cut()
        assert (again, witness_again) == (first, witness)
        assert engine.flow_calls == flows  # nothing re-solved

    def test_pruning_skips_candidates(self):
        g = fft_graph(4)
        pruned = MinCutEngine(g, prune=True)
        exhaustive = MinCutEngine(g, prune=False)
        assert pruned.max_cut()[0] == exhaustive.max_cut()[0]
        assert pruned.flow_calls < exhaustive.flow_calls
        assert pruned.pruned > 0

    def test_engine_matches_legacy_function(self):
        g = diamond_graph(4)
        engine = MinCutEngine(g)
        for v in g.vertices():
            assert engine.cut_value(v) == convex_min_cut_value(g, v)

    def test_invalid_vertex_rejected(self):
        engine = MinCutEngine(chain_graph(3))
        with pytest.raises(ValueError):
            engine.cut_value(10)
        with pytest.raises(ValueError):
            engine.max_cut([0, 99])

    def test_empty_candidates(self):
        assert MinCutEngine(chain_graph(3)).max_cut([]) == (0, None)
        assert MinCutEngine(ComputationGraph()).max_cut() == (0, None)

    def test_stats_shape(self):
        engine = MinCutEngine(fft_graph(3))
        engine.max_cut()
        stats = engine.stats()
        assert stats["backend"] in available_flow_backends()
        assert stats["flow_calls"] == engine.flow_calls > 0
        assert stats["cut_seconds"] > 0.0


class TestWarmStore:
    def test_warm_engine_is_flow_free(self, tmp_path):
        from repro.runtime.store import CutStore

        store = CutStore(tmp_path / "store")
        g = fft_graph(3)
        cold = MinCutEngine(g, store=store)
        cold_max, _ = cold.max_cut()
        assert cold.flow_calls > 0
        assert store.stats()["flows_recorded"] == cold.flow_calls

        warm = MinCutEngine(g, store=store)
        warm_max, _ = warm.max_cut()
        assert warm_max == cold_max
        assert warm.flow_calls == 0
        assert warm.store_served > 0

    def test_store_is_backend_independent(self, tmp_path):
        from repro.runtime.store import CutStore

        store = CutStore(tmp_path / "store")
        g = diamond_graph(4)
        MinCutEngine(g, backend="array-dinic", store=store).max_cut()
        warm = MinCutEngine(g, backend="scipy", store=store)
        warm.max_cut()
        assert warm.flow_calls == 0  # cut values are exact; backends share

    def test_partial_table_serves_known_vertices_only(self, tmp_path):
        from repro.runtime.store import CutStore

        store = CutStore(tmp_path / "store")
        g = fft_graph(3)
        seed = MinCutEngine(g, store=store)
        seed.max_cut(range(0, g.num_vertices, 2))
        warm = MinCutEngine(g, store=store)
        warm.max_cut()  # full candidate set: odd vertices may need flows
        full = MinCutEngine(g, prune=False).max_cut()[0]
        assert warm.max_cut()[0] == full
