"""Tests for the sweep orchestrator, graph specs, and pooled execution.

The acceptance contract of the runtime subsystem: a family sweep run twice
against the same store performs eigensolves only on the first run, and
pooled execution produces exactly the rows the serial path produces.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import sweep
from repro.graphs.generators import fft_graph, inner_product_graph
from repro.graphs.io import save_graph_npz
from repro.runtime.families import FAMILY_BUILDERS, GraphSpec, family_builder, resolve_graph
from repro.runtime.orchestrator import SweepOrchestrator, SweepTask
from repro.runtime.store import SpectrumStore

SIZES = [3, 4]
MEMORY_SIZES = [4, 8]
METHODS = ("spectral", "spectral-unnormalized")


def row_key(row):
    """The value-carrying fields of a row (timings excluded)."""
    return (
        row.family,
        row.size_param,
        row.num_vertices,
        row.num_edges,
        row.max_in_degree,
        row.memory_size,
        row.method,
        pytest.approx(row.bound, rel=1e-9, abs=1e-9),
        row.best_k,
    )


class TestFamilies:
    def test_registry_builders_are_generators(self):
        assert family_builder("fft") is fft_graph
        graph = family_builder("hypercube")(3)
        assert graph.num_vertices == 8

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            family_builder("nope")

    def test_spec_from_family(self):
        spec = GraphSpec(family="fft", size_param=3)
        assert spec.describe() == "fft:3"
        assert spec.build().num_vertices == fft_graph(3).num_vertices

    def test_spec_from_npz_path(self, tmp_path):
        graph = inner_product_graph(3)
        path = tmp_path / "dot.npz"
        save_graph_npz(graph, path)
        spec = GraphSpec(path=str(path))
        rebuilt = spec.build()
        assert rebuilt.num_vertices == graph.num_vertices
        assert rebuilt.fingerprint() == graph.fingerprint()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GraphSpec()
        with pytest.raises(ValueError):
            GraphSpec(family="fft", size_param=3, path="x.npz")
        with pytest.raises(ValueError):
            GraphSpec(family="fft")

    def test_resolve_graph_accepts_live_graph(self):
        graph = fft_graph(3)
        assert resolve_graph(graph) is graph

    def test_every_registered_family_builds(self):
        for name in FAMILY_BUILDERS:
            # 4 is valid for every registry family (strassen needs a power
            # of two).
            graph = family_builder(name)(4)
            assert graph.num_vertices > 0


class TestOrchestrator:
    def test_serial_matches_legacy_sweep_rows(self):
        legacy = sweep("fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS,
                       num_eigenvalues=30)
        report = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        assert [row_key(r) for r in report.rows] == [row_key(r) for r in legacy]
        assert report.num_eigensolves == 2 * len(SIZES)

    def test_pooled_matches_serial(self, tmp_path):
        serial = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        pooled = SweepOrchestrator(
            store=tmp_path / "spectra", processes=2, num_eigenvalues=30
        ).run_family("fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS)
        assert [row_key(r) for r in pooled.rows] == [row_key(r) for r in serial.rows]
        assert pooled.processes == 2
        # Per-(graph, normalization) task split: one task per (size, method).
        assert len(pooled.per_task_seconds) == len(SIZES) * len(METHODS)

    def test_second_run_against_same_store_is_solve_free(self, tmp_path):
        """The PR's acceptance criterion, at test scale."""
        store_root = tmp_path / "spectra"
        cold = SweepOrchestrator(store=store_root, num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        assert cold.num_eigensolves == 2 * len(SIZES)
        warm = SweepOrchestrator(store=store_root, num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        assert warm.num_eigensolves == 0
        assert [row_key(r) for r in warm.rows] == [row_key(r) for r in cold.rows]
        assert SpectrumStore(store_root).stats()["solves_recorded"] == 2 * len(SIZES)

    def test_pooled_warm_run_is_solve_free(self, tmp_path):
        store_root = tmp_path / "spectra"
        SweepOrchestrator(store=store_root, processes=2, num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        warm = SweepOrchestrator(
            store=store_root, processes=2, num_eigenvalues=30
        ).run_family("fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS)
        assert warm.num_eigensolves == 0

    def test_run_specs_rehydrates_from_npz(self, tmp_path):
        graph = fft_graph(3)
        path = tmp_path / "fft3.npz"
        save_graph_npz(graph, path)
        specs = [GraphSpec(path=str(path)), GraphSpec(family="fft", size_param=4)]
        report = SweepOrchestrator(num_eigenvalues=30).run_specs(
            specs, MEMORY_SIZES, methods=("spectral",)
        )
        families = {r.family for r in report.rows}
        assert families == {"fft3.npz", "fft:4"}
        # The npz graph is structurally an fft(3): same bounds as the builder.
        direct = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, [3], MEMORY_SIZES, methods=("spectral",)
        )
        npz_rows = [r for r in report.rows if r.family == "fft3.npz"]
        assert [r.bound for r in npz_rows] == [r.bound for r in direct.rows]

    def test_family_registry_used_when_builder_omitted(self):
        report = SweepOrchestrator(num_eigenvalues=20).run_family(
            "fft", None, [3], MEMORY_SIZES, methods=("spectral",)
        )
        assert len(report.rows) == len(MEMORY_SIZES)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            SweepTask(family="fft", size_param=3)
        with pytest.raises(ValueError):
            SweepTask(
                family="fft",
                size_param=3,
                builder=fft_graph,
                spec=GraphSpec(family="fft", size_param=3),
            )

    def test_invalid_processes_rejected(self):
        with pytest.raises(ValueError, match="processes"):
            SweepOrchestrator(processes=0)

    def test_unknown_method_rejected_before_any_work(self):
        # Even with an empty task list the typo must fail loudly.
        with pytest.raises(ValueError, match="unknown method"):
            SweepOrchestrator().run([], [4], methods=("spectrl",))
        with pytest.raises(ValueError, match="unknown method"):
            sweep("fft", fft_graph, [], [4], methods=("spectrl",))

    def test_pooled_largest_first_matches_serial(self, tmp_path):
        """CI contract: largest-first pooled rows are identical to serial."""
        sizes = [5, 3, 4]  # deliberately not sorted
        serial = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, sizes, MEMORY_SIZES, methods=METHODS
        )
        pooled = SweepOrchestrator(
            store=tmp_path / "spectra", processes=2, num_eigenvalues=30
        ).run_family("fft", fft_graph, sizes, MEMORY_SIZES, methods=METHODS)
        assert [row_key(r) for r in pooled.rows] == [row_key(r) for r in serial.rows]
        # The schedule itself is largest-first: ranks ascend as estimates
        # descend (ties broken by task order).
        records = pooled.tasks
        by_rank = sorted(records, key=lambda r: r.schedule_rank)
        estimates = [r.size_estimate for r in by_rank]
        assert estimates == sorted(estimates, reverse=True)
        assert estimates[0] == max(r.size_estimate for r in records)

    def test_task_records_carry_backend_and_dtype(self, tmp_path):
        report = SweepOrchestrator(num_eigenvalues=20).run_family(
            "fft", fft_graph, [3, 4], MEMORY_SIZES, methods=("spectral",)
        )
        assert len(report.tasks) == 2
        for record in report.tasks:
            assert record.backend == "dense"  # auto resolves dense at this scale
            assert record.dtype == "float64"
            assert record.num_eigensolves >= 0
            assert record.solve_seconds >= 0.0
            assert record.size_estimate == (record.size_param + 1) * 2**record.size_param

    def test_split_disabled_is_one_task_per_graph(self):
        report = SweepOrchestrator(num_eigenvalues=20, split_methods=False).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        assert len(report.tasks) == len(SIZES)
        assert all(record.methods == METHODS for record in report.tasks)
        split = SweepOrchestrator(num_eigenvalues=20).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=METHODS
        )
        assert [row_key(r) for r in report.rows] == [row_key(r) for r in split.rows]

    def test_report_summary_shape(self, tmp_path):
        report = SweepOrchestrator(store=tmp_path / "s", num_eigenvalues=20).run_family(
            "fft", fft_graph, [3], MEMORY_SIZES, methods=("spectral",)
        )
        summary = report.summary()
        assert summary["num_rows"] == report.num_rows == len(MEMORY_SIZES)
        assert summary["store_root"] == str(tmp_path / "s")
        assert summary["processes"] == 1


class TestConvexMinCutOrchestration:
    CONVEX_METHODS = ("spectral", "convex-min-cut")

    def test_serial_convex_rows_match_legacy_sweep(self):
        legacy = sweep(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS,
            num_eigenvalues=30,
        )
        report = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS
        )
        assert [row_key(r) for r in report.rows] == [row_key(r) for r in legacy]
        assert report.num_flow_calls > 0

    def test_pooled_chunked_convex_matches_serial(self, tmp_path):
        serial = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS
        )
        pooled = SweepOrchestrator(
            store=tmp_path / "s", processes=2, num_eigenvalues=30
        ).run_family("fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS)
        assert [row_key(r) for r in pooled.rows] == [row_key(r) for r in serial.rows]
        # Each graph's convex task split into one chunk per worker, scheduled
        # alongside the spectral tasks.
        convex_records = [
            r for r in pooled.tasks if r.methods == ("convex-min-cut",)
        ]
        assert len(convex_records) == 2 * len(SIZES)
        assert {r.num_chunks for r in convex_records} == {2}
        assert all(r.flow_backend is not None for r in convex_records)
        spectral_records = [r for r in pooled.tasks if r.methods == ("spectral",)]
        assert all(r.flow_backend is None and r.flow_calls == 0 for r in spectral_records)

    def test_explicit_chunk_count(self, tmp_path):
        report = SweepOrchestrator(
            store=tmp_path / "s", processes=2, convex_chunks=3, num_eigenvalues=30
        ).run_family("fft", fft_graph, [3], MEMORY_SIZES, methods=("convex-min-cut",))
        convex_records = [r for r in report.tasks if r.methods == ("convex-min-cut",)]
        assert len(convex_records) == 3
        assert sorted(r.chunk_index for r in convex_records) == [0, 1, 2]
        serial = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, [3], MEMORY_SIZES, methods=("convex-min-cut",)
        )
        assert [row_key(r) for r in report.rows] == [row_key(r) for r in serial.rows]

    def test_warm_store_run_is_flow_free(self, tmp_path):
        store_root = tmp_path / "s"
        cold = SweepOrchestrator(store=store_root, num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS
        )
        assert cold.num_flow_calls > 0
        warm = SweepOrchestrator(store=store_root, num_eigenvalues=30).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS
        )
        assert warm.num_flow_calls == 0
        assert warm.num_eigensolves == 0
        assert [row_key(r) for r in warm.rows] == [row_key(r) for r in cold.rows]

    def test_pooled_warm_store_run_is_flow_free(self, tmp_path):
        store_root = tmp_path / "s"
        kwargs = dict(store=store_root, processes=2, num_eigenvalues=30)
        SweepOrchestrator(**kwargs).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS
        )
        warm = SweepOrchestrator(**kwargs).run_family(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=self.CONVEX_METHODS
        )
        assert warm.num_flow_calls == 0

    def test_mincut_backend_selection_flows_to_records(self):
        report = SweepOrchestrator(
            num_eigenvalues=30, mincut_backend="array-dinic"
        ).run_family("fft", fft_graph, [3], MEMORY_SIZES, methods=("convex-min-cut",))
        (record,) = report.tasks
        assert record.flow_backend == "array-dinic"
        assert record.flow_calls > 0
        assert record.cut_seconds > 0.0

    def test_summary_reports_flow_calls(self):
        report = SweepOrchestrator(num_eigenvalues=30).run_family(
            "fft", fft_graph, [3], MEMORY_SIZES, methods=("convex-min-cut",)
        )
        assert report.summary()["num_flow_calls"] == report.num_flow_calls > 0

    def test_invalid_chunk_count_rejected(self):
        with pytest.raises(ValueError, match="convex_chunks"):
            SweepOrchestrator(convex_chunks=0)


class TestBlasPinning:
    def test_initializer_pins_unset_vars(self, monkeypatch):
        from repro.runtime.orchestrator import (
            BLAS_THREAD_ENV_VARS,
            pin_worker_blas_threads,
        )

        for name in BLAS_THREAD_ENV_VARS:
            # setenv first so monkeypatch records the original state (and
            # removes the pinned value again on teardown), then delenv to
            # present the "unset" case to the initializer.
            monkeypatch.setenv(name, "sentinel")
            monkeypatch.delenv(name)
        pin_worker_blas_threads()
        import os

        assert all(os.environ[name] == "1" for name in BLAS_THREAD_ENV_VARS)

    def test_initializer_respects_explicit_overrides(self, monkeypatch):
        from repro.runtime.orchestrator import pin_worker_blas_threads

        monkeypatch.setenv("OMP_NUM_THREADS", "4")
        pin_worker_blas_threads()
        import os

        assert os.environ["OMP_NUM_THREADS"] == "4"

    def test_pooled_run_with_pinning_disabled_still_works(self, tmp_path):
        report = SweepOrchestrator(
            store=tmp_path / "s", processes=2, num_eigenvalues=20, pin_blas=False
        ).run_family("fft", fft_graph, [3], MEMORY_SIZES, methods=("spectral",))
        assert report.num_rows == len(MEMORY_SIZES)


class TestSweepFunctionIntegration:
    def test_sweep_with_processes_and_store(self, tmp_path):
        store_root = tmp_path / "spectra"
        rows = sweep(
            "fft",
            fft_graph,
            SIZES,
            MEMORY_SIZES,
            methods=("spectral",),
            num_eigenvalues=30,
            processes=2,
            store=store_root,
        )
        serial = sweep(
            "fft", fft_graph, SIZES, MEMORY_SIZES, methods=("spectral",),
            num_eigenvalues=30,
        )
        assert [row_key(r) for r in rows] == [row_key(r) for r in serial]
        assert len(SpectrumStore(store_root)) == len(SIZES)
