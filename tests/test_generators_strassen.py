"""Tests for the Strassen multiplication generator (§6.2, Figure 9)."""

from __future__ import annotations

import pytest

from repro.graphs.generators.strassen import strassen_graph, strassen_num_multiplications


class TestCounts:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 7), (4, 49), (8, 343)])
    def test_num_multiplications_formula(self, n, expected):
        assert strassen_num_multiplications(n) == expected

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_multiplication_vertices_match_formula(self, n):
        g = strassen_graph(n)
        muls = [v for v in g.vertices() if g.op(v) == "mul"]
        assert len(muls) == strassen_num_multiplications(n)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_inputs_and_outputs(self, n):
        g = strassen_graph(n)
        assert len(g.sources()) == 2 * n * n
        assert len(g.sinks()) == n * n

    def test_n1_is_single_product(self):
        g = strassen_graph(1)
        assert g.num_vertices == 3


class TestStructure:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_acyclic_and_connected(self, n):
        g = strassen_graph(n)
        g.validate()
        assert g.is_weakly_connected()

    def test_fused_max_in_degree_is_four(self):
        assert strassen_graph(4, combine="fused").max_in_degree == 4

    def test_binary_max_in_degree_is_two(self):
        assert strassen_graph(4, combine="binary").max_in_degree == 2

    def test_fused_smaller_than_binary(self):
        fused = strassen_graph(4, combine="fused")
        binary = strassen_graph(4, combine="binary")
        assert fused.num_vertices < binary.num_vertices
        # Same multiplications either way.
        assert len([v for v in fused.vertices() if fused.op(v) == "mul"]) == len(
            [v for v in binary.vertices() if binary.op(v) == "mul"]
        )

    def test_outputs_labeled(self):
        g = strassen_graph(2)
        labels = {g.label(v) for v in g.sinks()}
        assert labels == {f"C[{i},{j}]" for i in range(2) for j in range(2)}

    def test_growth_rate_is_subcubic(self):
        """Strassen's graph grows like n^{log2 7} ≈ n^2.81, not n^3."""
        small = strassen_graph(4).num_vertices
        large = strassen_graph(8).num_vertices
        ratio = large / small
        assert 6.0 < ratio < 8.0  # doubling n multiplies the size by ~7


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            strassen_graph(3)

    def test_bad_combine_rejected(self):
        with pytest.raises(ValueError):
            strassen_graph(2, combine="bogus")
