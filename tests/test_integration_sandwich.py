"""Integration tests: the lower/upper bound sandwich on the paper's graphs.

For every evaluation graph family of §6.2 and several memory sizes, the chain

    convex-min-cut bound, spectral bound   <=   J*_G   <=   simulated I/O

must hold.  These tests exercise the whole stack together (generators,
Laplacians, eigensolvers, bounds, baselines, scheduler, simulator) on graphs
large enough to produce non-trivial values but small enough to run in seconds.
"""

from __future__ import annotations

import pytest

from repro.baselines.convex_mincut import convex_min_cut_bound
from repro.baselines.exact import minimum_io_upper_bound
from repro.core.bounds import spectral_bound, spectral_bound_unnormalized
from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    naive_matmul_graph,
    strassen_graph,
)
from repro.graphs.stats import graph_stats

CASES = [
    pytest.param(fft_graph(5), 4, id="fft5-M4"),
    pytest.param(fft_graph(5), 8, id="fft5-M8"),
    pytest.param(bellman_held_karp_graph(7), 16, id="bhk7-M16"),
    pytest.param(naive_matmul_graph(4, reduction="flat"), 8, id="matmul4-M8"),
    pytest.param(strassen_graph(4), 8, id="strassen4-M8"),
]


@pytest.mark.parametrize("graph,M", CASES)
def test_sandwich(graph, M):
    stats = graph_stats(graph)
    assert stats.max_in_degree + 1 <= M, "test case must be feasible"

    upper = minimum_io_upper_bound(graph, M, policies=("belady",), num_random_orders=2)
    spectral = spectral_bound(graph, M, num_eigenvalues=min(graph.num_vertices, 80))
    spectral_t5 = spectral_bound_unnormalized(
        graph, M, num_eigenvalues=min(graph.num_vertices, 80)
    )
    convex = convex_min_cut_bound(graph, M)

    assert spectral.value <= upper.total_io + 1e-9
    assert spectral_t5.value <= upper.total_io + 1e-9
    assert convex.value <= upper.total_io + 1e-9


@pytest.mark.parametrize("levels", [5, 6])
def test_fft_bound_grows_with_problem_size(levels):
    """The spectral bound grows with the FFT size for fixed M (Figure 7 shape)."""
    small = spectral_bound(fft_graph(levels), M=4, num_eigenvalues=60).value
    large = spectral_bound(fft_graph(levels + 2), M=4, num_eigenvalues=60).value
    assert large >= small


def test_spectral_beats_convex_min_cut_on_large_enough_fft():
    """§6.4: the spectral bound is tighter than the convex min-cut baseline on
    the butterfly once the graph is reasonably large."""
    graph = fft_graph(8)
    spectral = spectral_bound(graph, M=4, num_eigenvalues=60).value
    convex = convex_min_cut_bound(graph, M=4, vertices=range(0, graph.num_vertices, 25)).value
    assert spectral > convex


def test_spectral_trivial_cases_match_paper_observations():
    """Naive matmul at the paper's memory sizes: the convex min-cut baseline is
    trivial while the spectral bound is at least as informative (§6.4)."""
    graph = naive_matmul_graph(6, reduction="flat")
    convex = convex_min_cut_bound(graph, M=32).value
    spectral = spectral_bound(graph, M=32, num_eigenvalues=60).value
    assert convex == 0.0
    assert spectral >= convex
