"""Tests for the LU factorisation and triangular-solve generators."""

from __future__ import annotations

import pytest

from repro.core.bounds import spectral_bound
from repro.graphs.generators.linalg import lu_factorization_graph, triangular_solve_graph
from repro.pebbling.simulator import best_simulated_io


class TestLUFactorization:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_vertex_count(self, n):
        graph = lu_factorization_graph(n)
        multipliers = n * (n - 1) // 2
        updates = sum((n - 1 - k) ** 2 for k in range(n))
        assert graph.num_vertices == n * n + multipliers + updates

    def test_degrees_and_structure(self):
        graph = lu_factorization_graph(4)
        graph.validate()
        assert graph.is_weakly_connected()
        assert graph.max_in_degree == 3  # fused update vertices
        assert len(graph.sources()) == 16

    def test_n1_is_trivial(self):
        graph = lu_factorization_graph(1)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            lu_factorization_graph(0)

    def test_bound_sound_against_simulation(self):
        graph = lu_factorization_graph(5)
        M = 8
        lower = spectral_bound(graph, M, num_eigenvalues=60).value
        upper = best_simulated_io(graph, M, num_random_orders=1).total_io
        assert lower <= upper + 1e-9


class TestTriangularSolve:
    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_vertex_count(self, n):
        graph = triangular_solve_graph(n)
        inputs = n * (n + 1) // 2 + n
        operations = n + 2 * (n * (n - 1) // 2)  # divisions + (mul, sub) pairs
        assert graph.num_vertices == inputs + operations

    def test_structure(self):
        graph = triangular_solve_graph(5)
        graph.validate()
        assert graph.max_in_degree == 2
        # The last unknown depends on every previous unknown.
        last_x = [v for v in graph.vertices() if graph.label(v) == "x[4]"][0]
        ancestors = graph.ancestors(last_x)
        for i in range(4):
            xi = [v for v in graph.vertices() if graph.label(v) == f"x[{i}]"][0]
            assert xi in ancestors

    def test_low_io_workload(self):
        """Forward substitution is nearly sequential: the bound is trivial for
        moderate memory sizes."""
        graph = triangular_solve_graph(8)
        assert spectral_bound(graph, M=16).value == 0.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            triangular_solve_graph(-1)
