"""Tests for the Bellman-Held-Karp hypercube generator (§5.1)."""

from __future__ import annotations

import pytest

from repro.graphs.generators.hypercube import bellman_held_karp_graph, hypercube_graph
from repro.utils.mathutils import binomial


class TestShape:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4, 6])
    def test_vertex_count(self, d):
        assert hypercube_graph(d).num_vertices == 2**d

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 6])
    def test_edge_count(self, d):
        # The d-cube has d * 2^{d-1} edges.
        assert hypercube_graph(d).num_edges == d * 2 ** (d - 1)

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_degrees(self, d):
        g = hypercube_graph(d)
        assert g.max_out_degree == d
        assert g.max_in_degree == d
        # Out-degree of a mask is the number of unset bits.
        assert g.out_degree(0) == d
        assert g.out_degree(2**d - 1) == 0

    def test_single_source_and_sink(self):
        g = hypercube_graph(4)
        assert g.sources() == [0]
        assert g.sinks() == [2**4 - 1]

    def test_acyclic_and_connected(self):
        g = hypercube_graph(4)
        g.validate()
        assert g.is_weakly_connected()

    def test_bhk_alias(self):
        assert bellman_held_karp_graph(3) == hypercube_graph(3)

    def test_figure4_example(self):
        """Figure 4: the 3-city BHK graph is the 3-cube with 8 vertices."""
        g = bellman_held_karp_graph(3)
        assert g.num_vertices == 8
        assert g.num_edges == 12


class TestStructure:
    def test_edges_increase_popcount_by_one(self):
        g = hypercube_graph(4)
        for u, v in g.edges():
            assert bin(v).count("1") == bin(u).count("1") + 1
            assert u & v == u  # v is a superset of u

    def test_level_sizes_are_binomials(self):
        d = 5
        g = hypercube_graph(d)
        for level in range(d + 1):
            count = sum(1 for v in g.vertices() if bin(v).count("1") == level)
            assert count == binomial(d, level)

    def test_critical_path_is_dimension(self):
        assert hypercube_graph(5).longest_path_length() == 5

    def test_labels_are_bitstrings(self):
        g = hypercube_graph(3)
        assert g.label(5) == "101"
        assert g.op(0) == "input"
