"""Tests for the CSR-backed graph core.

Covers the frozen :class:`CSRView` (edge array, CSR structure, caching and
invalidation), the structural fingerprint, the bulk ``add_edges_array``
constructor, and — as property tests over the existing random-DAG generators
— that the vectorized ``laplacian`` / ``degree_vector`` /
``adjacency_matrix`` / ``undirected_weights`` match a per-edge reference
implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.compgraph import ComputationGraph
from repro.graphs.csr import CSRView, build_csr_view
from repro.graphs.generators import (
    fft_graph,
    hypercube_graph,
    layered_random_dag,
    random_dag,
    stencil_1d_graph,
)
from repro.graphs.laplacian import (
    adjacency_matrix,
    degree_vector,
    laplacian,
    undirected_weights,
)


# ----------------------------------------------------------------------
# Per-edge reference implementations (the pre-CSR semantics).
# ----------------------------------------------------------------------
def reference_adjacency(graph, normalized=False, directed=False) -> np.ndarray:
    n = graph.num_vertices
    A = np.zeros((n, n))
    for u, v in graph.edges():
        w = 1.0 / graph.out_degree(u) if normalized else 1.0
        A[u, v] += w
        if not directed:
            A[v, u] += w
    return A


def reference_degree_vector(graph, normalized=False) -> np.ndarray:
    deg = np.zeros(graph.num_vertices)
    for u, v in graph.edges():
        w = 1.0 / graph.out_degree(u) if normalized else 1.0
        deg[u] += w
        deg[v] += w
    return deg


def reference_laplacian(graph, normalized=True) -> np.ndarray:
    A = reference_adjacency(graph, normalized=normalized)
    return np.diag(A.sum(axis=1)) - A


def reference_undirected_weights(graph, normalized=True):
    weights = {}
    for u, v in graph.edges():
        w = 1.0 / graph.out_degree(u) if normalized else 1.0
        key = (u, v) if u < v else (v, u)
        weights[key] = weights.get(key, 0.0) + w
    return weights


def sample_graphs():
    """Structurally diverse graphs from the existing generators."""
    return [
        random_dag(24, edge_probability=0.3, seed=0),
        random_dag(40, edge_probability=0.1, max_in_degree=3, seed=1),
        layered_random_dag(num_layers=4, layer_width=6, in_degree=2, seed=2),
        fft_graph(3),
        hypercube_graph(4),
        stencil_1d_graph(8, 3),
        ComputationGraph(5),  # edgeless
        ComputationGraph(),  # empty
    ]


class TestVectorizedMatchesReference:
    @pytest.mark.parametrize("idx", range(8))
    @pytest.mark.parametrize("normalized", [True, False])
    def test_adjacency(self, idx, normalized):
        g = sample_graphs()[idx]
        for directed in (False, True):
            np.testing.assert_allclose(
                adjacency_matrix(g, normalized=normalized, directed=directed),
                reference_adjacency(g, normalized=normalized, directed=directed),
                atol=1e-12,
            )

    @pytest.mark.parametrize("idx", range(8))
    @pytest.mark.parametrize("normalized", [True, False])
    def test_degree_vector(self, idx, normalized):
        g = sample_graphs()[idx]
        np.testing.assert_allclose(
            degree_vector(g, normalized=normalized),
            reference_degree_vector(g, normalized=normalized),
            atol=1e-12,
        )

    @pytest.mark.parametrize("idx", range(8))
    @pytest.mark.parametrize("normalized", [True, False])
    def test_laplacian(self, idx, normalized):
        g = sample_graphs()[idx]
        np.testing.assert_allclose(
            laplacian(g, normalized=normalized),
            reference_laplacian(g, normalized=normalized),
            atol=1e-12,
        )

    @pytest.mark.parametrize("idx", range(8))
    @pytest.mark.parametrize("normalized", [True, False])
    def test_undirected_weights(self, idx, normalized):
        g = sample_graphs()[idx]
        ours = undirected_weights(g, normalized=normalized)
        ref = reference_undirected_weights(g, normalized=normalized)
        assert ours.keys() == ref.keys()
        for key in ref:
            assert ours[key] == pytest.approx(ref[key])

    def test_sparse_and_dense_agree_on_random_dags(self):
        for seed in range(5):
            g = random_dag(30, edge_probability=0.25, seed=seed)
            dense = laplacian(g, normalized=True, sparse=False)
            sparse = laplacian(g, normalized=True, sparse=True)
            np.testing.assert_allclose(np.asarray(sparse.todense()), dense, atol=1e-12)


class TestFreeze:
    def test_view_is_cached_until_mutation(self):
        g = random_dag(15, edge_probability=0.4, seed=3)
        view = g.freeze()
        assert g.freeze() is view
        g.add_edge(0, 14) if not g.has_edge(0, 14) else g.add_vertex()
        assert g.freeze() is not view

    def test_any_mutation_invalidates(self):
        g = ComputationGraph(3)
        views = [g.freeze()]
        g.add_edge(0, 1)
        views.append(g.freeze())
        g.add_vertex()
        views.append(g.freeze())
        g.add_edges_array(np.array([[1, 2], [0, 2]]))
        views.append(g.freeze())
        assert len({id(v) for v in views}) == 4

    def test_edges_sorted_and_immutable(self):
        g = ComputationGraph(4)
        g.add_edges([(2, 3), (0, 2), (0, 1)])
        view = g.freeze()
        assert view.edges.tolist() == [[0, 1], [0, 2], [2, 3]]
        with pytest.raises(ValueError):
            view.edges[0, 0] = 9
        assert g.edge_array() is view.edges

    def test_csr_structure(self):
        g = ComputationGraph(4)
        g.add_edges([(0, 2), (0, 1), (2, 3)])
        view = g.freeze()
        assert view.indptr.tolist() == [0, 2, 2, 3, 3]
        assert view.successor_slice(0).tolist() == [1, 2]
        assert view.out_degrees.tolist() == [2, 0, 1, 0]
        assert view.in_degrees.tolist() == [0, 1, 1, 1]
        mat = g.csr()
        assert sp.issparse(mat)
        np.testing.assert_allclose(
            np.asarray(mat.todense()),
            reference_adjacency(g, directed=True),
        )

    def test_build_csr_view_helper(self):
        view = build_csr_view(3, np.array([[0, 1], [1, 2]]))
        assert isinstance(view, CSRView)
        assert view.num_edges == 2
        assert view.max_out_degree == 1

    def test_view_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError, match="out of range"):
            build_csr_view(3, np.array([[0, 5]]))
        with pytest.raises(ValueError, match="out of range"):
            build_csr_view(3, np.array([[-1, 1]]))

    def test_generators_preserve_adjacency_order(self):
        # The bulk-edge generator ports promise per-vertex successor and
        # predecessor order identical to the historical per-edge builds, so
        # seeded schedules and pebbling results stay reproducible.  Spot
        # checks against the known historical orders:
        g = fft_graph(3)
        assert list(g.successors(1)) == [8, 9]  # row-major consumers, as per-edge build
        assert list(g.predecessors(9)) == [1, 0]  # straight parent first
        h = hypercube_graph(3)
        assert list(h.predecessors(7)) == [3, 5, 6]  # masks ascending
        assert list(h.successors(0)) == [1, 2, 4]  # bits ascending
        s = stencil_1d_graph(4, 1)
        assert list(s.predecessors(5)) == [0, 1, 2]  # offsets -r..r

    def test_view_owns_its_edge_array(self):
        # Mutating the caller's array after construction must not change the
        # view (or its fingerprint) — including the <= 1 edge case, where a
        # lexsort-free path could otherwise alias the input.
        source = np.array([[0, 1]])
        view = build_csr_view(2, source)
        fp = view.fingerprint
        source[0, 1] = 0
        assert view.edges.tolist() == [[0, 1]]
        assert not np.shares_memory(view.edges, source)
        assert view.fingerprint == fp

    def test_empty_graph_view(self):
        view = ComputationGraph().freeze()
        assert view.num_vertices == 0
        assert view.num_edges == 0
        assert view.edges.shape == (0, 2)
        assert view.fingerprint  # well-defined even for the empty graph


class TestFingerprint:
    def test_insertion_order_irrelevant(self):
        g1 = ComputationGraph(4)
        g1.add_edges([(0, 1), (1, 2), (2, 3)])
        g2 = ComputationGraph(4)
        g2.add_edges([(2, 3), (0, 1), (1, 2)])
        assert g1.fingerprint() == g2.fingerprint()

    def test_labels_do_not_affect_fingerprint(self):
        g1 = ComputationGraph(3)
        g1.add_edge(0, 1)
        g2 = ComputationGraph(3)
        g2.add_edge(0, 1)
        g2.set_label(0, "x")
        g2.set_op(1, "mul")
        assert g1.fingerprint() == g2.fingerprint()

    def test_mutation_changes_fingerprint(self):
        g = random_dag(12, edge_probability=0.4, seed=4)
        fp = g.fingerprint()
        g.add_vertex()
        assert g.fingerprint() != fp

    def test_relabel_round_trip_preserves_fingerprint(self):
        g = random_dag(15, edge_probability=0.3, seed=5)
        rng = np.random.default_rng(0)
        perm = [int(p) for p in rng.permutation(g.num_vertices)]
        inverse = [0] * len(perm)
        for i, p in enumerate(perm):
            inverse[p] = i
        round_trip = g.relabeled(perm).relabeled(inverse)
        assert round_trip.fingerprint() == g.fingerprint()

    def test_nontrivial_relabel_changes_fingerprint(self):
        # A chain reversed by relabelling has a different directed edge set,
        # so the fingerprint must differ (it is a structural, not an
        # isomorphism, hash).
        g = ComputationGraph(3)
        g.add_edges([(0, 1), (1, 2)])
        relabeled = g.relabeled([2, 1, 0])
        assert relabeled.fingerprint() != g.fingerprint()

    def test_symmetric_relabel_preserves_fingerprint(self):
        # The FFT butterfly is invariant under swapping the two halves of
        # every column (rows r <-> r XOR 1 at stride-1 symmetry is not an
        # automorphism, but the identity permutation trivially is).
        g = fft_graph(3)
        same = g.relabeled(list(range(g.num_vertices)))
        assert same.fingerprint() == g.fingerprint()


class TestAddEdgesArray:
    def test_matches_per_edge_construction(self):
        edges = [(0, 2), (1, 2), (2, 4), (3, 4), (0, 4)]
        g1 = ComputationGraph(5)
        g1.add_edges(edges)
        g2 = ComputationGraph(5)
        g2.add_edges_array(np.array(edges))
        assert g1 == g2
        assert g1.fingerprint() == g2.fingerprint()
        for v in g1.vertices():
            assert sorted(g1.predecessors(v)) == sorted(g2.predecessors(v))
            assert sorted(g1.successors(v)) == sorted(g2.successors(v))

    def test_mixes_with_incremental_edges(self):
        g = ComputationGraph(6)
        g.add_edge(0, 1)
        g.add_edges_array(np.array([[1, 2], [2, 3]]))
        g.add_edge(3, 4)
        g.add_edges_array(np.array([[4, 5]]))
        assert g.num_edges == 5
        assert g.topological_order() == [0, 1, 2, 3, 4, 5]

    def test_rejects_self_loops(self):
        g = ComputationGraph(3)
        with pytest.raises(ValueError, match="self loop"):
            g.add_edges_array(np.array([[0, 1], [2, 2]]))
        assert g.num_edges == 0  # batch is rejected atomically

    def test_rejects_duplicates_within_batch(self):
        g = ComputationGraph(3)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edges_array(np.array([[0, 1], [0, 1]]))

    def test_rejects_duplicates_against_existing(self):
        g = ComputationGraph(3)
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edges_array(np.array([[1, 2], [0, 1]]))
        assert g.num_edges == 1

    def test_rejects_out_of_range(self):
        g = ComputationGraph(3)
        with pytest.raises(ValueError, match="out of range"):
            g.add_edges_array(np.array([[0, 3]]))
        with pytest.raises(ValueError, match="out of range"):
            g.add_edges_array(np.array([[-1, 1]]))

    def test_rejects_bad_shapes_and_dtypes(self):
        g = ComputationGraph(3)
        with pytest.raises(ValueError):
            g.add_edges_array(np.array([[0, 1, 2]]))
        with pytest.raises(TypeError):
            g.add_edges_array(np.array([[0.5, 1.0]]))

    def test_empty_batch_is_noop(self):
        g = ComputationGraph(3)
        g.add_edges_array(np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0

    def test_from_edges_accepts_arrays(self):
        g = ComputationGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert g.num_edges == 3
        assert g.has_edge(1, 2)


class TestDerivedGraphOrder:
    def test_copy_is_traversal_identical(self):
        g = fft_graph(2)
        c = g.copy()
        for v in g.vertices():
            assert g.successors(v) == c.successors(v)
            assert g.predecessors(v) == c.predecessors(v)
        assert c == g and c.fingerprint() == g.fingerprint()
        c.add_vertex()  # copies are independent
        assert c.num_vertices == g.num_vertices + 1

    def test_reversed_swaps_adjacency_in_order(self):
        g = fft_graph(2)
        r = g.reversed()
        for v in g.vertices():
            assert r.successors(v) == g.predecessors(v)
            assert r.predecessors(v) == g.successors(v)
        assert r.has_edge(*next(iter(g.edges()))[::-1])
        assert r.reversed() == g


class TestEdgeKeyPacking:
    def test_oversized_vertex_ids_rejected(self):
        from repro.graphs.csr import pack_edge_key, pack_edge_keys

        big = 2**31  # would overflow the int64 shift if accepted
        with pytest.raises(ValueError, match="packed"):
            pack_edge_keys(np.array([big]), np.array([0]))
        with pytest.raises(ValueError, match="packed"):
            pack_edge_key(big, 0)

    def test_scalar_and_array_packing_agree(self):
        from repro.graphs.csr import pack_edge_key, pack_edge_keys, unpack_edge_key

        u = np.array([0, 3, 2**31 - 1])
        v = np.array([1, 2**31 - 1, 0])
        keys = pack_edge_keys(u, v)
        for uu, vv, key in zip(u.tolist(), v.tolist(), keys.tolist()):
            assert pack_edge_key(uu, vv) == key
            assert unpack_edge_key(key) == (uu, vv)
