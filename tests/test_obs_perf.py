"""Tests for :mod:`repro.obs.perf` — the performance-regression sentinel.

The contracts that matter: the history ledger round-trips scalar metrics
with an environment fingerprint and survives corruption; baselines are
built only from *same-environment* records (git sha excluded); counter
metrics regress on ANY increase while decreases are improvements; timing
and throughput metrics are threshold-gated and honour
``REPRO_BENCH_TIMING_ASSERT=0``; and ``python -m repro obs perf check``
turns all of that into an exit code CI can gate on.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import perf
from repro.runtime.cli import main

FINGERPRINT = {
    "git_sha": "aaaaaaaaaaaa",
    "hostname": "ci-box",
    "platform": "Linux-x86_64",
    "cpu_count": 8,
    "python": "3.11.0",
    "numpy": "1.26.0",
    "scipy": "1.11.0",
}


def record(bench, metrics, sha="aaaaaaaaaaaa", timestamp=0.0, **env):
    fingerprint = dict(FINGERPRINT, git_sha=sha, **env)
    return perf.history_record(
        bench, metrics, fingerprint=fingerprint, timestamp=timestamp
    )


class TestFingerprint:
    def test_live_fingerprint_has_every_key_field(self):
        fingerprint = perf.environment_fingerprint()
        for name in ("git_sha", "hostname", "cpu_count", "python", "numpy", "scipy"):
            assert name in fingerprint
        assert fingerprint["cpu_count"] >= 1

    def test_key_excludes_git_sha(self):
        one = dict(FINGERPRINT, git_sha="aaaa")
        two = dict(FINGERPRINT, git_sha="bbbb")
        assert perf.fingerprint_key(one) == perf.fingerprint_key(two)
        assert perf.fingerprint_key(one) != perf.fingerprint_key(
            dict(FINGERPRINT, cpu_count=1)
        )


class TestLedger:
    def test_record_keeps_only_scalar_metrics(self):
        entry = record(
            "BENCH_x.json",
            {
                "warm_seconds": 1.5,
                "cold_eigensolves": 7,
                "flag": True,  # bools are not metrics
                "levels": [1, 2, 3],
                "nested": {"a": 1},
                "benchmark": "test_warm",
            },
        )
        assert entry["metrics"] == {"warm_seconds": 1.5, "cold_eigensolves": 7}
        assert entry["benchmark"] == "test_warm"
        assert entry["fingerprint"]["cpu_count"] == 8

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        perf.append_history(record("BENCH_x.json", {"warm_seconds": 1.0}), path)
        perf.append_history(record("BENCH_x.json", {"warm_seconds": 2.0}), path)
        history = perf.load_history(path)
        assert [r["metrics"]["warm_seconds"] for r in history] == [1.0, 2.0]

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        perf.append_history(record("BENCH_x.json", {"warm_seconds": 1.0}), path)
        with path.open("a") as handle:
            handle.write('{"bench": "BENCH_x.json", "metr\n')  # killed mid-append
            handle.write("not json at all\n")
            handle.write('"a bare string, not a record"\n')
        perf.append_history(record("BENCH_x.json", {"warm_seconds": 2.0}), path)
        assert len(perf.load_history(path)) == 2

    def test_load_missing_file_is_empty(self, tmp_path):
        assert perf.load_history(tmp_path / "absent.jsonl") == []


class TestClassify:
    @pytest.mark.parametrize(
        "name, kind",
        [
            ("cold_eigensolves", "counter"),
            ("fleet_herd_lease_leaders", "counter"),
            ("herd_coalesced", "counter"),
            ("warm_seconds", "timing"),
            ("p95_latency", "timing"),
            ("fleet_warm_speedup", "throughput"),
            ("cold_rps", "throughput"),
            ("num_eigenvalues", None),  # config scalar, ignored
            ("herd_threads", None),
        ],
    )
    def test_suffix_classification(self, name, kind):
        assert perf.classify_metric(name) == kind


class TestCheck:
    def test_identical_runs_pass(self):
        metrics = {"cold_eigensolves": 10, "warm_seconds": 1.0, "cold_rps": 50.0}
        history = [
            record("BENCH_x.json", metrics, sha="aaa", timestamp=1),
            record("BENCH_x.json", metrics, sha="bbb", timestamp=2),
        ]
        result = perf.check(history, window=5, threshold=0.25, timing_asserts=True)
        assert result.ok
        assert result.checked == 3
        assert result.improvements == []

    def test_counter_increase_is_a_regression(self):
        history = [
            record("BENCH_x.json", {"cold_eigensolves": 10}, sha="aaa", timestamp=1),
            record("BENCH_x.json", {"cold_eigensolves": 11}, sha="bbb", timestamp=2),
        ]
        result = perf.check(history, timing_asserts=True)
        assert not result.ok
        [verdict] = result.regressions
        assert verdict.metric == "cold_eigensolves"
        assert verdict.kind == "counter"
        assert "cold_eigensolves" in result.render()

    def test_counter_decrease_is_an_improvement_not_a_failure(self):
        history = [
            record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=1),
            record("BENCH_x.json", {"cold_eigensolves": 8}, timestamp=2),
        ]
        result = perf.check(history, timing_asserts=True)
        assert result.ok
        assert [v.metric for v in result.improvements] == ["cold_eigensolves"]

    def test_timing_within_threshold_is_ok(self):
        history = [
            record("BENCH_x.json", {"warm_seconds": 1.0}, timestamp=1),
            record("BENCH_x.json", {"warm_seconds": 1.2}, timestamp=2),
        ]
        assert perf.check(history, threshold=0.25, timing_asserts=True).ok

    def test_timing_beyond_threshold_regresses(self):
        history = [
            record("BENCH_x.json", {"warm_seconds": 1.0}, timestamp=1),
            record("BENCH_x.json", {"warm_seconds": 1.4}, timestamp=2),
        ]
        result = perf.check(history, threshold=0.25, timing_asserts=True)
        assert [v.metric for v in result.regressions] == ["warm_seconds"]

    def test_throughput_drop_regresses(self):
        history = [
            record("BENCH_x.json", {"cold_rps": 100.0}, timestamp=1),
            record("BENCH_x.json", {"cold_rps": 60.0}, timestamp=2),
        ]
        result = perf.check(history, threshold=0.25, timing_asserts=True)
        assert [v.metric for v in result.regressions] == ["cold_rps"]

    def test_timing_assert_switch_skips_timing_but_not_counters(self):
        history = [
            record(
                "BENCH_x.json",
                {"warm_seconds": 1.0, "cold_eigensolves": 10},
                timestamp=1,
            ),
            record(
                "BENCH_x.json",
                {"warm_seconds": 9.0, "cold_eigensolves": 11},
                timestamp=2,
            ),
        ]
        result = perf.check(history, threshold=0.25, timing_asserts=False)
        assert [v.metric for v in result.regressions] == ["cold_eigensolves"]
        assert any("warm_seconds" in reason for reason in result.skipped)

    def test_baseline_is_median_of_window(self):
        # One noisy outlier in the window must not poison the baseline:
        # median(1.0, 1.0, 5.0) = 1.0, so a 1.1 run stays within ±25%.
        history = [
            record("BENCH_x.json", {"warm_seconds": 1.0}, timestamp=1),
            record("BENCH_x.json", {"warm_seconds": 5.0}, timestamp=2),
            record("BENCH_x.json", {"warm_seconds": 1.0}, timestamp=3),
            record("BENCH_x.json", {"warm_seconds": 1.1}, timestamp=4),
        ]
        result = perf.check(history, window=5, threshold=0.25, timing_asserts=True)
        assert result.ok

    def test_other_environment_records_are_ignored(self):
        history = [
            record("BENCH_x.json", {"cold_eigensolves": 5}, cpu_count=1, timestamp=1),
            record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=2),
        ]
        result = perf.check(history, timing_asserts=True)
        assert result.ok  # 1-cpu baseline never judges the 8-cpu run
        assert any("same-environment" in reason for reason in result.skipped)

    def test_benches_are_independent(self):
        history = [
            record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=1),
            record("BENCH_y.json", {"cold_eigensolves": 3}, timestamp=2),
            record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=3),
            record("BENCH_y.json", {"cold_eigensolves": 4}, timestamp=4),
        ]
        result = perf.check(history, timing_asserts=True)
        assert [v.bench for v in result.regressions] == ["BENCH_y.json"]


class TestTrajectory:
    def test_render_shows_series_and_environments(self):
        history = [
            record("BENCH_x.json", {"warm_seconds": 1.0}, sha="aaa", timestamp=1),
            record("BENCH_x.json", {"warm_seconds": 1.2}, sha="bbb", timestamp=2),
        ]
        text = perf.render_trajectory(history)
        assert "BENCH_x.json" in text
        assert "warm_seconds" in text
        assert "1 -> 1.2" in text
        assert "1 environment" in text

    def test_empty_history(self):
        assert "empty" in perf.render_trajectory([])


class TestCli:
    def write_history(self, tmp_path, records):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        for entry in records:
            perf.append_history(entry, path)
        return path

    def test_check_passes_on_identical_runs(self, tmp_path, capsys):
        path = self.write_history(
            tmp_path,
            [
                record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=1),
                record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=2),
            ],
        )
        assert main(["obs", "perf", "check", "--history", str(path)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_check_fails_and_names_the_metric(self, tmp_path, capsys):
        path = self.write_history(
            tmp_path,
            [
                record("BENCH_x.json", {"cold_eigensolves": 10}, timestamp=1),
                record("BENCH_x.json", {"cold_eigensolves": 12}, timestamp=2),
            ],
        )
        assert main(["obs", "perf", "check", "--history", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "cold_eigensolves" in out

    def test_check_missing_history_fails_with_message(self, tmp_path, capsys):
        path = tmp_path / "absent.jsonl"
        assert main(["obs", "perf", "check", "--history", str(path)]) == 1
        assert "history" in capsys.readouterr().err.lower()

    def test_report_renders_trajectory(self, tmp_path, capsys):
        path = self.write_history(
            tmp_path,
            [record("BENCH_x.json", {"warm_seconds": 1.0}, timestamp=1)],
        )
        assert main(["obs", "perf", "report", "--history", str(path)]) == 0
        assert "warm_seconds" in capsys.readouterr().out

    def test_check_honours_threshold_flag(self, tmp_path):
        path = self.write_history(
            tmp_path,
            [
                record("BENCH_x.json", {"warm_seconds": 1.0}, timestamp=1),
                record("BENCH_x.json", {"warm_seconds": 1.4}, timestamp=2),
            ],
        )
        assert main(["obs", "perf", "check", "--history", str(path)]) == 1
        args = ["obs", "perf", "check", "--history", str(path), "--threshold", "0.5"]
        assert main(args) == 0


class TestWriteRecordShape:
    def test_bench_snapshot_embeds_fingerprint(self, tmp_path, monkeypatch):
        """The shape write_perf_record produces: cpu_count + environment in
        the snapshot, and a matching ledger line (exercised via the same
        helpers against a temp root, not the real repo files)."""
        fingerprint = perf.environment_fingerprint()
        payload = {"cold_eigensolves": 4, "warm_seconds": 0.5, "levels": [1, 2]}
        snapshot = dict(payload)
        snapshot["cpu_count"] = fingerprint["cpu_count"]
        snapshot["environment"] = fingerprint
        (tmp_path / "BENCH_x.json").write_text(json.dumps(snapshot))
        perf.append_history(
            perf.history_record("BENCH_x.json", payload, fingerprint=fingerprint),
            tmp_path / perf.HISTORY_FILENAME,
        )
        loaded = json.loads((tmp_path / "BENCH_x.json").read_text())
        assert loaded["environment"]["git_sha"] == fingerprint["git_sha"]
        [entry] = perf.load_history(tmp_path / perf.HISTORY_FILENAME)
        assert entry["metrics"] == {"cold_eigensolves": 4, "warm_seconds": 0.5}
        assert perf.fingerprint_key(entry["fingerprint"]) == perf.fingerprint_key(
            fingerprint
        )
