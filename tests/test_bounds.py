"""Tests for the spectral bounds (Theorems 4, 5, 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import (
    bound_spectrum,
    parallel_spectral_bound,
    spectral_bound,
    spectral_bound_from_eigenvalues,
    spectral_bound_unnormalized,
    spectral_bounds_for_memory_sizes,
)
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import (
    bellman_held_karp_graph,
    chain_graph,
    fft_graph,
    independent_ops_graph,
    inner_product_graph,
)
from repro.solvers.backend import EigenSolverOptions


class TestFromEigenvalues:
    def test_formula_single_k(self):
        # n=10, eigenvalues [0, 1, 2], k=3, M=1:
        # floor(10/3) * (0+1+2) - 2*3*1 = 3*3 - 6 = 3
        value, k, per_k = spectral_bound_from_eigenvalues([0.0, 1.0, 2.0], 10, 1, k=3)
        assert value == pytest.approx(3.0)
        assert k == 3
        assert per_k == {3: pytest.approx(3.0)}

    def test_sweep_picks_best_k(self):
        value, k, per_k = spectral_bound_from_eigenvalues([0.0, 1.0, 2.0], 10, 1)
        assert value == max(per_k.values())
        assert per_k[k] == value
        # The default sweep covers k = 2 .. h (§6.1): k = 1 is excluded
        # because lambda_1 = 0 makes its expression -2M, which never wins.
        assert set(per_k.keys()) == {2, 3}

    def test_default_sweep_excludes_k1_but_explicit_k1_allowed(self):
        _, best_k, per_k = spectral_bound_from_eigenvalues([0.0, 1.0, 2.0], 10, 1)
        assert 1 not in per_k and best_k >= 2
        _, _, explicit = spectral_bound_from_eigenvalues([0.0, 1.0, 2.0], 10, 1, k=1)
        assert set(explicit.keys()) == {1}

    def test_single_eigenvalue_falls_back_to_k1(self):
        # When only one eigenvalue is available the 2..h default sweep is
        # empty; the formula must still evaluate k=1 rather than silently
        # reporting an uninformative 0.
        value, k, per_k = spectral_bound_from_eigenvalues([5.0], 10, 1)
        assert per_k == {1: pytest.approx(48.0)}
        assert value == pytest.approx(48.0) and k == 1

    def test_single_vertex_graph_falls_back_to_k1(self):
        value, k, per_k = spectral_bound_from_eigenvalues([0.0], 1, 2)
        assert set(per_k.keys()) == {1}
        assert value == pytest.approx(-4.0)

    def test_k1_value(self):
        value, _, per_k = spectral_bound_from_eigenvalues([0.0, 5.0], 10, 2, k=1)
        # floor(10/1) * 0 - 2*1*2 = -4
        assert per_k[1] == pytest.approx(-4.0)

    def test_parallel_division(self):
        seq, _, _ = spectral_bound_from_eigenvalues([0.0, 1.0], 12, 1, k=2)
        par, _, _ = spectral_bound_from_eigenvalues([0.0, 1.0], 12, 1, k=2, num_processors=3)
        # floor(12/2)=6 vs floor(12/6)=2
        assert seq == pytest.approx(6 * 1 - 4)
        assert par == pytest.approx(2 * 1 - 4)

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            spectral_bound_from_eigenvalues([0.0, 1.0], 2, 1, k=3)

    def test_empty_inputs(self):
        value, k, per_k = spectral_bound_from_eigenvalues([], 0, 4)
        assert value == 0.0 and per_k == {}


class TestSpectralBound:
    def test_positive_on_large_fft(self):
        result = spectral_bound(fft_graph(8), M=4)
        assert result.value > 0
        assert result.best_k >= 2
        assert result.num_vertices == 9 * 256
        assert not result.is_trivial

    def test_zero_on_chain(self):
        """A chain needs no I/O for M >= 2, so the bound must be trivial."""
        result = spectral_bound(chain_graph(50), M=2)
        assert result.value == 0.0
        assert result.is_trivial

    def test_zero_on_edgeless_graph(self):
        result = spectral_bound(independent_ops_graph(10), M=2)
        assert result.value == 0.0

    def test_empty_graph(self):
        result = spectral_bound(ComputationGraph(), M=4)
        assert result.value == 0.0
        assert result.num_vertices == 0

    def test_monotone_nonincreasing_in_memory(self):
        graph = fft_graph(7)
        values = [spectral_bound(graph, M).value for M in (2, 4, 8, 16, 32)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_specific_k_matches_sweep_entry(self):
        graph = fft_graph(5)
        swept = spectral_bound(graph, M=4, num_eigenvalues=20)
        single = spectral_bound(graph, M=4, k=swept.best_k)
        assert single.raw_value == pytest.approx(swept.per_k_values[swept.best_k])

    def test_k_sequence(self):
        graph = fft_graph(5)
        result = spectral_bound(graph, M=4, k=[2, 4, 8])
        assert set(result.per_k_values.keys()) == {2, 4, 8}

    def test_invariant_under_relabelling(self):
        graph = fft_graph(4)
        rng = np.random.default_rng(0)
        perm = list(rng.permutation(graph.num_vertices))
        relabeled = graph.relabeled([int(p) for p in perm])
        a = spectral_bound(graph, M=2, num_eigenvalues=30)
        b = spectral_bound(relabeled, M=2, num_eigenvalues=30)
        assert a.raw_value == pytest.approx(b.raw_value, abs=1e-6)

    def test_sparse_and_dense_paths_agree(self):
        graph = fft_graph(5)
        dense = spectral_bound(graph, M=4, sparse=False)
        sparse = spectral_bound(graph, M=4, sparse=True)
        assert dense.raw_value == pytest.approx(sparse.raw_value, rel=1e-6, abs=1e-6)

    def test_eig_options_forwarded(self):
        graph = fft_graph(4)
        result = spectral_bound(graph, M=2, eig_options=EigenSolverOptions(method="lanczos"))
        reference = spectral_bound(graph, M=2)
        assert result.raw_value == pytest.approx(reference.raw_value, abs=1e-4)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            spectral_bound(fft_graph(2), M=0)
        with pytest.raises(TypeError):
            spectral_bound(fft_graph(2), M=2.5)  # type: ignore[arg-type]

    def test_result_dict_export(self):
        result = spectral_bound(fft_graph(3), M=2)
        data = result.as_dict()
        assert "value" in data and "eigenvalues" not in data


class TestTheorem5Variant:
    def test_unnormalized_not_tighter_than_normalized_on_regular_graphs(self):
        """For the butterfly (uniform out-degree 2) Theorem 5 equals Theorem 4."""
        graph = fft_graph(6)
        t4 = spectral_bound(graph, M=4, num_eigenvalues=40)
        t5 = spectral_bound_unnormalized(graph, M=4, num_eigenvalues=40)
        # Outputs have out-degree 0 and inputs/internal 2, so L~ = L/2 exactly
        # and the two bounds coincide.
        assert t5.raw_value == pytest.approx(t4.raw_value, rel=1e-6, abs=1e-6)

    def test_unnormalized_weaker_on_hypercube(self):
        """On the hypercube out-degrees vary, so Theorem 5 is strictly looser."""
        graph = bellman_held_karp_graph(8)
        t4 = spectral_bound(graph, M=4, num_eigenvalues=60)
        t5 = spectral_bound_unnormalized(graph, M=4, num_eigenvalues=60)
        assert t5.raw_value <= t4.raw_value + 1e-9

    def test_normalized_flag_recorded(self):
        assert spectral_bound(fft_graph(3), M=2).normalized is True
        assert spectral_bound_unnormalized(fft_graph(3), M=2).normalized is False


class TestMemorySweep:
    def test_matches_individual_calls(self):
        graph = fft_graph(6)
        swept = spectral_bounds_for_memory_sizes(graph, [4, 8, 16], num_eigenvalues=30)
        for M in (4, 8, 16):
            individual = spectral_bound(graph, M, num_eigenvalues=30)
            assert swept[M].raw_value == pytest.approx(individual.raw_value, rel=1e-9)

    def test_bound_spectrum_shape(self):
        graph = fft_graph(4)
        lam = bound_spectrum(graph, num_eigenvalues=10)
        assert lam.shape == (10,)
        assert np.all(np.diff(lam) >= -1e-12)
        assert lam[0] == pytest.approx(0.0, abs=1e-9)


class TestParallelBound:
    def test_p1_matches_sequential(self):
        graph = fft_graph(7)
        seq = spectral_bound(graph, M=4, num_eigenvalues=30)
        par = parallel_spectral_bound(graph, M=4, num_processors=1, num_eigenvalues=30)
        assert par.raw_value == pytest.approx(seq.raw_value, rel=1e-9)

    def test_monotone_nonincreasing_in_processors(self):
        graph = fft_graph(8)
        values = [
            parallel_spectral_bound(graph, M=4, num_processors=p, num_eigenvalues=30).value
            for p in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_empty_graph(self):
        result = parallel_spectral_bound(ComputationGraph(), M=2, num_processors=4)
        assert result.value == 0.0

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            parallel_spectral_bound(inner_product_graph(2), M=2, num_processors=0)
