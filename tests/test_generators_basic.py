"""Tests for the small/didactic, stencil and random graph generators."""

from __future__ import annotations

import pytest

from repro.graphs.generators.basic import (
    binary_tree_reduction_graph,
    chain_graph,
    diamond_graph,
    figure2_example_graph,
    independent_ops_graph,
    inner_product_graph,
    prefix_sum_graph,
)
from repro.graphs.generators.random_graphs import (
    erdos_renyi_dag,
    erdos_renyi_undirected_laplacian,
    layered_random_dag,
    random_dag,
)
from repro.graphs.generators.stencil import stencil_1d_graph, stencil_2d_graph


class TestInnerProduct:
    def test_figure1_graph(self):
        """Figure 1: the 2-element inner product has exactly 7 vertices."""
        g = inner_product_graph(2)
        assert g.num_vertices == 7
        assert len(g.sources()) == 4
        assert len(g.sinks()) == 1

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_counts(self, n):
        g = inner_product_graph(n)
        assert g.num_vertices == 2 * n + n + (n - 1)
        assert g.max_in_degree == 2

    def test_acyclic(self):
        inner_product_graph(4).validate()


class TestChainsAndTrees:
    def test_chain(self):
        g = chain_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4
        assert g.longest_path_length() == 4
        assert g.max_in_degree == 1

    def test_single_vertex_chain(self):
        g = chain_graph(1)
        assert g.num_edges == 0

    @pytest.mark.parametrize("leaves", [1, 2, 3, 7, 8])
    def test_binary_tree_reduction(self, leaves):
        g = binary_tree_reduction_graph(leaves)
        assert g.num_vertices == 2 * leaves - 1
        assert len(g.sinks()) == 1
        assert g.max_in_degree == (2 if leaves > 1 else 0)

    def test_diamond(self):
        g = diamond_graph(4)
        assert g.num_vertices == 6
        assert g.max_out_degree == 4
        assert g.in_degree(g.sinks()[0]) == 4

    def test_independent_ops(self):
        g = independent_ops_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_prefix_sum(self):
        g = prefix_sum_graph(4)
        assert g.num_vertices == 4 + 3
        assert g.max_in_degree == 2

    def test_figure2_example(self):
        g = figure2_example_graph()
        assert g.num_vertices == 7
        g.validate()


class TestStencils:
    def test_1d_counts(self):
        g = stencil_1d_graph(width=6, timesteps=3)
        assert g.num_vertices == 4 * 6
        assert g.max_in_degree == 3  # radius-1 interior stencil

    def test_1d_radius2(self):
        g = stencil_1d_graph(width=8, timesteps=1, radius=2)
        assert g.max_in_degree == 5

    def test_2d_counts(self):
        g = stencil_2d_graph(width=3, height=3, timesteps=2)
        assert g.num_vertices == 3 * 9
        assert g.max_in_degree == 5

    def test_stencils_acyclic(self):
        stencil_1d_graph(5, 2).validate()
        stencil_2d_graph(3, 2, 2).validate()


class TestRandomGraphs:
    def test_erdos_renyi_dag_acyclic(self):
        g = erdos_renyi_dag(30, 0.2, seed=0)
        g.validate()
        for u, v in g.edges():
            assert u < v

    def test_erdos_renyi_seeded_reproducible(self):
        g1 = erdos_renyi_dag(20, 0.3, seed=42)
        g2 = erdos_renyi_dag(20, 0.3, seed=42)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi_dag(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi_dag(10, 1.0, seed=0).num_edges == 45

    def test_erdos_renyi_laplacian_properties(self):
        import numpy as np

        L = erdos_renyi_undirected_laplacian(25, 0.4, seed=1)
        np.testing.assert_allclose(L, L.T)
        np.testing.assert_allclose(L.sum(axis=1), 0.0, atol=1e-12)
        assert np.linalg.eigvalsh(L).min() >= -1e-9

    def test_layered_random_dag(self):
        g = layered_random_dag(num_layers=4, layer_width=5, in_degree=2, seed=3)
        g.validate()
        assert g.num_vertices == 20
        assert g.max_in_degree <= 2
        # Layer 0 vertices are inputs.
        assert all(g.in_degree(v) == 0 for v in range(5))

    def test_random_dag_respects_max_in_degree(self):
        g = random_dag(40, edge_probability=0.8, max_in_degree=3, seed=5)
        g.validate()
        assert g.max_in_degree <= 3

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_dag(5, 1.5)
        with pytest.raises(TypeError):
            erdos_renyi_dag(5, "0.5")  # type: ignore[arg-type]
