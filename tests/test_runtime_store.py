"""Tests for the persistent SpectrumStore and its two-tier cache wiring.

The contract: a spectrum solved anywhere (any process, any run) against a
store is never solved again by anyone using the same store — the in-memory
cache checks disk before eigensolving and publishes fresh solves back.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.engine import BoundEngine
from repro.graphs.generators import fft_graph, hypercube_graph
from repro.runtime.store import STORE_ENV_VAR, SpectrumStore, default_store_root
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.spectrum_cache import SpectrumCache


@pytest.fixture
def store(tmp_path):
    return SpectrumStore(tmp_path / "spectra")


FP = "a" * 64  # an arbitrary fingerprint; the store treats it as opaque


class TestStoreBasics:
    def test_put_get_round_trip(self, store):
        values = np.array([0.0, 0.5, 1.25])
        store.put(FP, values, 0.125)
        got = store.get(FP, 3)
        assert got is not None
        np.testing.assert_allclose(got.eigenvalues, values)
        assert got.solve_seconds == 0.125
        assert got.num_eigenvalues == 3

    def test_miss_returns_none(self, store):
        assert store.get(FP, 3) is None
        assert store.misses == 1 and store.hits == 0

    def test_longer_entry_serves_shorter_request(self, store):
        store.put(FP, np.arange(10, dtype=float), 1.0)
        got = store.get(FP, 4)
        assert got is not None
        assert got.num_eigenvalues == 10  # the full vector, caller slices
        np.testing.assert_allclose(got.eigenvalues[:4], [0, 1, 2, 3])

    def test_shorter_entry_does_not_serve_longer_request(self, store):
        store.put(FP, np.arange(4, dtype=float), 1.0)
        assert store.get(FP, 10) is None

    def test_key_includes_normalization_sparse_and_options(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0, normalized=True, sparse=False)
        assert store.get(FP, 3, normalized=False) is None
        assert store.get(FP, 3, sparse=True) is None
        assert store.get(FP, 3, eig_options=EigenSolverOptions(method="lanczos")) is None
        assert store.get(FP, 3) is not None

    def test_distinct_fingerprints_do_not_collide(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0)
        assert store.get("b" * 64, 3) is None

    def test_persists_across_handles(self, tmp_path):
        root = tmp_path / "spectra"
        SpectrumStore(root).put(FP, np.arange(5, dtype=float), 2.0)
        reopened = SpectrumStore(root)
        got = reopened.get(FP, 5)
        assert got is not None and got.solve_seconds == 2.0
        assert len(reopened) == 1

    def test_eigenvalues_read_only(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0)
        values = store.get(FP, 3).eigenvalues
        with pytest.raises(ValueError):
            values[0] = 99.0

    def test_missing_blob_tolerated_and_entry_dropped(self, store):
        entry_id = store.put(FP, np.arange(3, dtype=float), 1.0)
        (store.root / "blobs" / f"{entry_id}.npz").unlink()
        assert store.get(FP, 3) is None
        assert len(store) == 0  # stale index entry was dropped

    def test_corrupt_blob_removed_and_next_candidate_served(self, store):
        big_id = store.put(FP, np.arange(10, dtype=float), 1.0)
        store.put(FP, np.arange(5, dtype=float), 1.0)
        (store.root / "blobs" / f"{big_id}.npz").write_bytes(b"garbage")
        # The corrupt 10-entry is dropped (index AND file) and the request is
        # served from the smaller-but-sufficient 5-entry.
        got = store.get(FP, 4)
        assert got is not None and got.num_eigenvalues == 5
        assert len(store) == 1
        assert not (store.root / "blobs" / f"{big_id}.npz").exists()

    def test_corrupt_index_treated_as_empty(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0)
        (store.root / "index.json").write_text("{not json")
        assert store.get(FP, 3) is None
        assert len(store) == 0

    def test_clear_removes_entries_and_counters(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0)
        store.put("b" * 64, np.arange(4, dtype=float), 1.0)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.stats()["solves_recorded"] == 0
        assert not list((store.root / "blobs").glob("*.npz"))

    def test_stats(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0)
        store.put(FP, np.arange(8, dtype=float), 1.0)  # second h, same graph
        stats = store.stats()
        assert stats["num_entries"] == 2
        assert stats["num_graphs"] == 1
        assert stats["solves_recorded"] == 2
        assert stats["total_bytes"] > 0

    def test_entries_listing(self, store):
        store.put(FP, np.arange(3, dtype=float), 0.5, normalized=False)
        (entry,) = store.entries()
        assert entry["num_eigenvalues"] == 3
        assert entry["normalized"] is False
        assert entry["bytes"] > 0

    def test_duplicate_put_keeps_one_entry_but_counts_both_solves(self, store):
        store.put(FP, np.arange(3, dtype=float), 1.0)
        store.put(FP, np.arange(3, dtype=float), 2.0)
        assert len(store) == 1
        assert store.stats()["solves_recorded"] == 2

    def test_read_only_operations_do_not_create_store_dirs(self, tmp_path):
        # `cache stats` on a mistyped --store path must not scatter empty
        # store directories; only writes create the tree.
        root = tmp_path / "mistyped"
        store = SpectrumStore(root)
        assert store.get(FP, 3) is None
        assert store.stats()["num_entries"] == 0
        assert store.entries() == []
        assert store.clear() == 0
        assert not root.exists()
        store.put(FP, np.arange(3, dtype=float), 1.0)
        assert root.exists()

    def test_env_var_controls_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "custom"))
        assert default_store_root() == tmp_path / "custom"
        assert SpectrumStore().root == tmp_path / "custom"

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        root = tmp_path / "spectra"
        errors = []

        def writer(worker: int):
            try:
                handle = SpectrumStore(root)
                for i in range(8):
                    handle.put(f"{worker}-{i}" * 8, np.arange(3, dtype=float), 1.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        store = SpectrumStore(root)
        assert len(store) == 32
        assert store.stats()["solves_recorded"] == 32


class TestTwoTierCache:
    def test_solve_publishes_to_store(self, store):
        cache = SpectrumCache(store=store)
        graph = fft_graph(3)
        cache.spectrum(graph, 5)
        assert cache.misses == 1
        assert len(store) == 1
        assert store.puts == 1

    def test_fresh_cache_hits_store_instead_of_solving(self, store):
        graph = fft_graph(3)
        first = SpectrumCache(store=store)
        solved = first.spectrum(graph, 5)
        warm = SpectrumCache(store=store)
        served = warm.spectrum(graph, 5)
        assert warm.misses == 0
        assert warm.hits == 1 and warm.store_hits == 1
        assert served.cache_hit
        assert served.solve_seconds == solved.solve_seconds
        np.testing.assert_allclose(served.eigenvalues, solved.eigenvalues)

    def test_store_hit_promoted_to_memory(self, store):
        graph = fft_graph(3)
        SpectrumCache(store=store).spectrum(graph, 8)
        warm = SpectrumCache(store=store)
        warm.spectrum(graph, 8)
        store_hits_after_first = warm.store_hits
        # Second lookup (even a shorter prefix) must not touch the disk tier.
        warm.spectrum(graph, 3)
        assert warm.store_hits == store_hits_after_first
        assert warm.hits == 2

    def test_prefix_served_across_runs(self, store):
        graph = fft_graph(3)
        SpectrumCache(store=store).spectrum(graph, 10)
        warm = SpectrumCache(store=store)
        small = warm.spectrum(graph, 4)
        assert warm.misses == 0
        assert small.eigenvalues.shape == (4,)

    def test_normalizations_stored_separately(self, store):
        graph = hypercube_graph(3)
        cold = SpectrumCache(store=store)
        cold.spectrum(graph, 4, normalized=True)
        cold.spectrum(graph, 4, normalized=False)
        warm = SpectrumCache(store=store)
        warm.spectrum(graph, 4, normalized=True)
        warm.spectrum(graph, 4, normalized=False)
        assert warm.misses == 0 and warm.store_hits == 2

    def test_clear_resets_store_hit_counter(self, store):
        graph = fft_graph(3)
        SpectrumCache(store=store).spectrum(graph, 4)
        warm = SpectrumCache(store=store)
        warm.spectrum(graph, 4)
        warm.clear()
        assert warm.store_hits == 0 and warm.hits == 0

    def test_storeless_cache_unchanged(self):
        cache = SpectrumCache()
        assert cache.store is None
        cache.spectrum(fft_graph(3), 4)
        assert cache.store_hits == 0


class TestEngineStoreParameter:
    def test_engine_store_round_trip(self, store):
        graph = fft_graph(4)
        cold = BoundEngine(graph, num_eigenvalues=20, store=store)
        r1 = cold.spectral(8)
        assert cold.num_eigensolves == 1
        warm = BoundEngine(graph, num_eigenvalues=20, store=store)
        r2 = warm.spectral(8)
        assert warm.num_eigensolves == 0
        assert r2.raw_value == pytest.approx(r1.raw_value, rel=1e-12)

    def test_engine_rejects_cache_and_store_together(self, store):
        with pytest.raises(ValueError, match="not both"):
            BoundEngine(fft_graph(3), cache=SpectrumCache(), store=store)


class TestCutStore:
    @pytest.fixture
    def cuts(self, tmp_path):
        from repro.runtime.store import CutStore

        return CutStore(tmp_path / "store")

    def test_miss_then_merge_then_hit(self, cuts):
        assert cuts.get("fp") is None
        assert cuts.misses == 1
        assert cuts.merge("fp", [3, 1], [7, 2], flow_calls=2) == 2
        table = cuts.get("fp")
        assert table.as_dict() == {1: 2, 3: 7}
        assert cuts.hits == 1 and cuts.puts == 1

    def test_merge_unions_and_counts_flows(self, cuts):
        cuts.merge("fp", [0, 1], [4, 5], flow_calls=2)
        cuts.merge("fp", [1, 2], [5, 6], flow_calls=1)
        assert cuts.get("fp").as_dict() == {0: 4, 1: 5, 2: 6}
        stats = cuts.stats()
        assert stats["flows_recorded"] == 3
        assert stats["num_graphs"] == 1 and stats["num_cuts"] == 3

    def test_tables_are_per_fingerprint(self, cuts):
        cuts.merge("aa", [0], [1])
        cuts.merge("bb", [0], [9])
        assert cuts.get("aa").as_dict() == {0: 1}
        assert cuts.get("bb").as_dict() == {0: 9}
        assert len(cuts) == 2

    def test_loaded_arrays_are_read_only(self, cuts):
        cuts.merge("fp", [0], [1])
        table = cuts.get("fp")
        with pytest.raises(ValueError):
            table.values[0] = 5

    def test_clear_all_and_filtered(self, cuts):
        cuts.merge("aaa1", [0], [1], flow_calls=1)
        cuts.merge("bbb2", [0], [2], flow_calls=1)
        assert cuts.clear(fingerprint_prefix="aaa") == 1
        assert cuts.get("bbb2") is not None
        # Filtered clears keep the work counter; a full clear resets it.
        assert cuts.stats()["flows_recorded"] == 2
        assert cuts.clear() == 1
        assert cuts.stats()["flows_recorded"] == 0

    def test_clear_filtered_by_lineage(self, cuts):
        cuts.merge("aaa1", [0], [1], lineage="fft")
        cuts.merge("bbb2", [0], [2], lineage="matmul")
        assert cuts.clear(lineage="nope") == 0
        assert cuts.clear(lineage="fft") == 1
        assert cuts.get("aaa1") is None
        assert cuts.get("bbb2") is not None

    def test_mismatched_merge_rejected(self, cuts):
        with pytest.raises(ValueError, match="equal length"):
            cuts.merge("fp", [0, 1], [1])

    def test_corrupt_blob_is_a_miss(self, cuts):
        cuts.merge("fp", [0], [1])
        blob = cuts.root / "cuts" / "fp.npz"
        blob.write_bytes(b"garbage")
        assert cuts.get("fp") is None

    def test_merge_does_not_inflate_lookup_counters(self, cuts):
        cuts.merge("fp", [0], [1])
        cuts.merge("fp", [1], [2])  # internal union read must not count
        assert cuts.hits == 0 and cuts.misses == 0
        cuts.get("fp")
        assert cuts.hits == 1 and cuts.misses == 0

    def test_verify_clean_store(self, cuts):
        cuts.merge("fp", [0, 1], [1, 2])
        report = cuts.verify()
        assert report["ok"] and report["entries_checked"] == 1
        assert not report["missing"] and not report["corrupt"]

    def test_verify_detects_and_fixes_corrupt_and_missing(self, cuts):
        cuts.merge("aa", [0], [1])
        cuts.merge("bb", [0], [2])
        (cuts.root / "cuts" / "aa.npz").write_bytes(b"garbage")
        (cuts.root / "cuts" / "bb.npz").unlink()
        report = cuts.verify()
        assert not report["ok"]
        assert report["corrupt"] == ["aa"] and report["missing"] == ["bb"]
        fixed = cuts.verify(fix=True)
        assert fixed["entries_removed"] == 2
        assert cuts.verify()["ok"]
        assert len(cuts) == 0

    def test_verify_detects_num_cuts_mismatch(self, cuts):
        import numpy as _np

        cuts.merge("fp", [0, 1], [1, 2])
        # Overwrite the blob with a shorter (valid-looking) table: the index
        # still says num_cuts == 2.
        _np.savez_compressed(
            cuts.root / "cuts" / "fp.npz",
            vertices=_np.array([0]), values=_np.array([1]),
        )
        report = cuts.verify()
        assert report["corrupt"] == ["fp"]

    def test_read_only_handle_creates_no_directories(self, tmp_path):
        from repro.runtime.store import CutStore

        root = tmp_path / "never-created"
        store = CutStore(root)
        assert store.get("fp") is None
        assert store.stats()["num_graphs"] == 0
        assert not root.exists()

    def test_concurrent_merges_do_not_lose_entries(self, cuts):
        import threading as _threading

        def writer(offset):
            cuts.merge("fp", [offset], [offset + 100], flow_calls=1)

        threads = [_threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cuts.get("fp").as_dict() == {i: i + 100 for i in range(8)}
        assert cuts.stats()["flows_recorded"] == 8

    def test_shares_root_with_spectrum_store(self, tmp_path):
        from repro.runtime.store import CutStore

        root = tmp_path / "store"
        spectra = SpectrumStore(root)
        cuts = CutStore(root)
        spectra.put("fp", np.array([0.0, 1.0]), 0.1)
        cuts.merge("fp", [0], [1])
        # Different indexes, blobs, locks — no interference.
        assert len(spectra) == 1 and len(cuts) == 1
        assert spectra.stats()["solves_recorded"] == 1
        assert cuts.stats()["flows_recorded"] == 0
