"""Tests for the balanced-partition machinery (§4.1/4.2, Lemma 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitions import (
    balanced_partition_blocks,
    balanced_partition_sizes,
    edge_boundary,
    partition_blocks_for_order,
    partition_indicator_matrix,
    partition_projector,
    read_write_sets,
    segment_io_lower_bound,
    weighted_edge_boundary,
)
from repro.graphs.generators import fft_graph, inner_product_graph
from repro.graphs.orders import natural_topological_order


class TestBalancedSizes:
    @pytest.mark.parametrize(
        "n,k,expected",
        [
            (10, 3, [4, 3, 3]),
            (9, 3, [3, 3, 3]),
            (7, 2, [4, 3]),
            (5, 5, [1, 1, 1, 1, 1]),
            (3, 5, [1, 1, 1, 0, 0]),
            (0, 2, [0, 0]),
        ],
    )
    def test_sizes(self, n, k, expected):
        sizes = balanced_partition_sizes(n, k)
        assert sizes == expected
        assert sum(sizes) == n

    def test_first_segments_get_extra(self):
        sizes = balanced_partition_sizes(11, 4)
        assert sizes == [3, 3, 3, 2]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            balanced_partition_sizes(5, 0)

    def test_blocks_cover_range(self):
        blocks = balanced_partition_blocks(10, 3)
        flat = [t for block in blocks for t in block]
        assert flat == list(range(10))


class TestIndicatorMatrices:
    def test_indicator_shape_and_columns(self):
        W = partition_indicator_matrix(7, 3)
        assert W.shape == (7, 3)
        np.testing.assert_allclose(W.sum(axis=1), 1.0)  # every step in one segment
        np.testing.assert_allclose(W.sum(axis=0), [3, 2, 2])

    def test_projector_is_block_diagonal_projector_scaled(self):
        W = partition_projector(6, 2)
        # W = Ŵ Ŵᵀ has eigenvalues equal to the segment sizes plus zeros.
        eigenvalues = np.sort(np.linalg.eigvalsh(W))[::-1]
        np.testing.assert_allclose(eigenvalues[:2], [3, 3])
        np.testing.assert_allclose(eigenvalues[2:], 0.0, atol=1e-12)

    def test_projector_eigenvalue_floor_property(self):
        """W(k) has k non-zero eigenvalues, each at least floor(n/k) (Thm 4 proof)."""
        n, k = 11, 4
        W = partition_projector(n, k)
        eigenvalues = np.sort(np.linalg.eigvalsh(W))[::-1]
        nonzero = eigenvalues[:k]
        assert np.all(nonzero >= n // k - 1e-12)
        np.testing.assert_allclose(eigenvalues[k:], 0.0, atol=1e-12)


class TestPartitionOfOrder:
    def test_blocks_follow_schedule(self):
        order = [4, 2, 0, 1, 3]
        blocks = partition_blocks_for_order(order, 2)
        assert blocks == [[4, 2, 0], [1, 3]]

    def test_blocks_cover_all_vertices(self):
        g = fft_graph(3)
        order = natural_topological_order(g)
        blocks = partition_blocks_for_order(order, 5)
        assert sorted(v for b in blocks for v in b) == list(range(g.num_vertices))


class TestBoundaries:
    def test_edge_boundary_simple(self):
        g = inner_product_graph(2)
        # S = the four inputs; boundary = the four edges into the products.
        boundary = edge_boundary(g, [0, 1, 2, 3])
        assert len(boundary) == 4

    def test_weighted_boundary_unnormalized_counts_edges(self):
        g = inner_product_graph(2)
        assert weighted_edge_boundary(g, [0, 1, 2, 3], normalized=False) == 4

    def test_weighted_boundary_normalized(self):
        g = inner_product_graph(2)
        # Every input has out-degree 1, so normalisation does not change it.
        assert weighted_edge_boundary(g, [0, 1, 2, 3], normalized=True) == pytest.approx(4.0)

    def test_weighted_boundary_whole_graph_is_zero(self):
        g = fft_graph(3)
        assert weighted_edge_boundary(g, list(g.vertices())) == 0.0
        assert weighted_edge_boundary(g, []) == 0.0

    def test_normalized_at_most_unnormalized(self):
        g = fft_graph(3)
        rng = np.random.default_rng(1)
        for _ in range(5):
            subset = [int(v) for v in rng.choice(g.num_vertices, size=12, replace=False)]
            assert weighted_edge_boundary(g, subset, True) <= weighted_edge_boundary(
                g, subset, False
            ) + 1e-12


class TestReadWriteSets:
    def test_lemma1_sets_on_inner_product(self):
        g = inner_product_graph(2)
        # S = the two product vertices {4, 5}: reads are the four inputs,
        # writes are both products (both feed the final addition outside S).
        reads, writes = read_write_sets(g, [4, 5])
        assert reads == {0, 1, 2, 3}
        assert writes == {4, 5}

    def test_segment_bound_matches_sets(self):
        g = inner_product_graph(2)
        assert segment_io_lower_bound(g, [4, 5], M=2) == 4 + 2 - 2 * 2

    def test_rw_sets_vs_weighted_boundary_inequality(self):
        """|R_S| + |W_S| >= sum_{(u,v) in ∂S} 1/d_out(u) (Theorem 2 proof)."""
        g = fft_graph(3)
        rng = np.random.default_rng(2)
        for _ in range(20):
            size = int(rng.integers(1, g.num_vertices))
            subset = [int(v) for v in rng.choice(g.num_vertices, size=size, replace=False)]
            reads, writes = read_write_sets(g, subset)
            assert len(reads) + len(writes) >= weighted_edge_boundary(g, subset) - 1e-9
