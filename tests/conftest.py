"""Shared fixtures for the test-suite.

Graphs used across many test modules are built once per session; they are all
small enough that every bound / simulation / baseline runs in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    bellman_held_karp_graph,
    fft_graph,
    inner_product_graph,
    naive_matmul_graph,
    strassen_graph,
)


@pytest.fixture(scope="session")
def fft4():
    """16-point FFT butterfly (80 vertices)."""
    return fft_graph(4)


@pytest.fixture(scope="session")
def fft3():
    """8-point FFT butterfly (32 vertices)."""
    return fft_graph(3)


@pytest.fixture(scope="session")
def bhk5():
    """Bellman-Held-Karp hypercube with 5 cities (32 vertices)."""
    return bellman_held_karp_graph(5)


@pytest.fixture(scope="session")
def matmul3():
    """Naive 3x3 matrix multiplication graph (chain reduction)."""
    return naive_matmul_graph(3)


@pytest.fixture(scope="session")
def strassen4():
    """Strassen 4x4 multiplication graph (fused combinations)."""
    return strassen_graph(4)


@pytest.fixture(scope="session")
def dot2():
    """Inner product of two 2-vectors — the 7-vertex graph of Figure 1."""
    return inner_product_graph(2)
