"""Tests for BoundEngine and the SpectrumCache.

The contract under test: an engine computes each (graph, normalisation)
spectrum exactly once no matter how many bounds are evaluated, a shared
cache extends that guarantee across engines, and the engine's results are
numerically identical to the one-shot public functions.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.solvers.spectrum_cache as spectrum_cache_module
from repro.core.bounds import (
    bound_spectrum,
    parallel_spectral_bound,
    spectral_bound,
    spectral_bound_unnormalized,
    spectral_bounds_for_memory_sizes,
)
from repro.core.engine import BoundEngine, SweepPoint
from repro.core.result import ParallelBoundResult, SpectralBoundResult
from repro.graphs.compgraph import ComputationGraph
from repro.graphs.generators import fft_graph, hypercube_graph
from repro.solvers.backend import EigenSolverOptions
from repro.solvers.spectrum_cache import SpectrumCache, default_spectrum_cache

MEMORY_SIZES = [4, 8, 16, 32]


class TestEngineMatchesPublicFunctions:
    def test_spectral(self):
        graph = fft_graph(5)
        engine = BoundEngine(graph, num_eigenvalues=30, cache=SpectrumCache())
        for M in MEMORY_SIZES:
            expected = spectral_bound(graph, M, num_eigenvalues=30)
            got = engine.spectral(M)
            assert got.raw_value == pytest.approx(expected.raw_value, rel=1e-9)
            assert got.best_k == expected.best_k
            assert got.normalized is True

    def test_unnormalized(self):
        graph = hypercube_graph(5)
        engine = BoundEngine(graph, num_eigenvalues=20, cache=SpectrumCache())
        expected = spectral_bound_unnormalized(graph, 4, num_eigenvalues=20)
        got = engine.unnormalized(4)
        assert got.raw_value == pytest.approx(expected.raw_value, rel=1e-9)
        assert got.normalized is False

    def test_parallel(self):
        graph = fft_graph(6)
        engine = BoundEngine(graph, num_eigenvalues=30, cache=SpectrumCache())
        for p in (1, 2, 4):
            expected = parallel_spectral_bound(
                graph, 4, num_processors=p, num_eigenvalues=30
            )
            got = engine.parallel(4, p)
            assert got.raw_value == pytest.approx(expected.raw_value, rel=1e-9)
            assert got.num_processors == p

    def test_parallel_p1_matches_sequential(self):
        engine = BoundEngine(fft_graph(5), num_eigenvalues=20, cache=SpectrumCache())
        seq = engine.spectral(8)
        par = engine.parallel(8, 1)
        assert par.raw_value == pytest.approx(seq.raw_value, rel=1e-12)

    def test_spectrum_matches_bound_spectrum(self):
        graph = fft_graph(4)
        engine = BoundEngine(graph, num_eigenvalues=15, cache=SpectrumCache())
        for normalized in (True, False):
            np.testing.assert_allclose(
                engine.spectrum(normalized=normalized),
                bound_spectrum(graph, num_eigenvalues=15, normalized=normalized),
                atol=1e-9,
            )

    def test_empty_graph(self):
        engine = BoundEngine(ComputationGraph(), cache=SpectrumCache())
        assert engine.spectral(4).value == 0.0
        assert engine.parallel(4, 2).value == 0.0
        assert engine.spectrum().shape == (0,)
        assert engine.num_eigensolves == 0

    def test_spectrum_rejects_nonpositive_truncation(self):
        engine = BoundEngine(fft_graph(3), cache=SpectrumCache())
        with pytest.raises(ValueError):
            engine.spectrum(num_eigenvalues=0)
        with pytest.raises(ValueError):
            engine.spectrum(num_eigenvalues=-5)

    def test_explicit_k(self):
        graph = fft_graph(5)
        engine = BoundEngine(graph, num_eigenvalues=20, cache=SpectrumCache())
        swept = engine.spectral(4)
        single = engine.spectral(4, k=swept.best_k)
        assert single.raw_value == pytest.approx(swept.per_k_values[swept.best_k])

    def test_default_cache_is_shared(self):
        graph = fft_graph(3)
        engine = BoundEngine(graph)
        assert engine.cache is default_spectrum_cache()


class TestOneEigensolvePerNormalization:
    def test_engine_counts_solves(self, monkeypatch):
        calls = {"n": 0}
        real = spectrum_cache_module.solve_smallest

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(spectrum_cache_module, "solve_smallest", counting)
        engine = BoundEngine(fft_graph(5), num_eigenvalues=25, cache=SpectrumCache())
        for M in MEMORY_SIZES:
            engine.spectral(M)
            engine.unnormalized(M)
            engine.parallel(M, 4)
        # 12 bound evaluations, but only two spectra: one per normalisation.
        assert calls["n"] == 2
        assert engine.num_eigensolves == 2
        assert engine.cache.hits == 3 * len(MEMORY_SIZES) - 2

    def test_sweep_fft_family_one_solve_per_graph_and_normalization(self):
        """The acceptance contract of the Figure 7 sweep, at test scale."""
        levels = [4, 5, 6]
        cache = SpectrumCache()
        total_points = 0
        for level in levels:
            engine = BoundEngine(fft_graph(level), num_eigenvalues=30, cache=cache)
            points = engine.sweep(
                MEMORY_SIZES, methods=("spectral", "spectral-unnormalized")
            )
            total_points += len(points)
            assert engine.num_eigensolves == 2
        assert cache.misses == 2 * len(levels)
        assert cache.hits == total_points - cache.misses
        assert total_points == len(levels) * 2 * len(MEMORY_SIZES)

    def test_second_engine_on_same_graph_hits(self):
        cache = SpectrumCache()
        graph = fft_graph(4)
        BoundEngine(graph, num_eigenvalues=10, cache=cache).spectral(4)
        second = BoundEngine(graph, num_eigenvalues=10, cache=cache)
        result = second.spectral(8)
        assert second.num_eigensolves == 0
        assert cache.hits >= 1
        assert result.value >= 0.0

    def test_structurally_equal_graphs_share_spectra(self):
        cache = SpectrumCache()
        BoundEngine(fft_graph(4), num_eigenvalues=10, cache=cache).spectral(4)
        other = BoundEngine(fft_graph(4), num_eigenvalues=10, cache=cache)
        other.spectral(4)
        assert cache.misses == 1  # same fingerprint, no second solve

    def test_mutated_graph_resolves(self):
        cache = SpectrumCache()
        graph = fft_graph(3)
        engine = BoundEngine(graph, num_eigenvalues=10, cache=cache)
        engine.spectral(4)
        graph.add_vertex()  # changes the fingerprint
        engine.spectral(4)
        assert cache.misses == 2


class TestSweep:
    def test_points_cover_combinations(self):
        engine = BoundEngine(fft_graph(4), num_eigenvalues=20, cache=SpectrumCache())
        points = engine.sweep(
            [4, 8], processors=(1, 4), methods=("spectral", "spectral-unnormalized")
        )
        combos = {(p.method, p.num_processors, p.memory_size) for p in points}
        assert len(combos) == 2 * 2 * 2
        for p in points:
            assert isinstance(p, SweepPoint)
            if p.num_processors == 1:
                assert isinstance(p.result, SpectralBoundResult)
            else:
                assert isinstance(p.result, ParallelBoundResult)
            assert p.bound == p.result.value

    def test_single_processor_int(self):
        engine = BoundEngine(fft_graph(3), num_eigenvalues=10, cache=SpectrumCache())
        points = engine.sweep([4], processors=2)
        assert len(points) == 1
        assert points[0].num_processors == 2

    def test_unknown_method_rejected(self):
        engine = BoundEngine(fft_graph(3), cache=SpectrumCache())
        with pytest.raises(ValueError, match="unknown method"):
            engine.sweep([4], methods=("bogus",))

    def test_sweep_matches_individual_calls(self):
        graph = hypercube_graph(5)
        engine = BoundEngine(graph, num_eigenvalues=20, cache=SpectrumCache())
        points = engine.sweep([4, 8], methods=("spectral",))
        for p in points:
            individual = spectral_bound(graph, p.memory_size, num_eigenvalues=20)
            assert p.result.raw_value == pytest.approx(individual.raw_value, rel=1e-9)


class TestTimingAttribution:
    def test_eig_cost_attributed_once_in_memory_sweep(self):
        graph = fft_graph(6)
        results = spectral_bounds_for_memory_sizes(
            graph, MEMORY_SIZES, num_eigenvalues=40
        )
        by_m = [results[M] for M in MEMORY_SIZES]
        # Every result reports the same shared eigensolve cost...
        eig_costs = {r.eig_elapsed_seconds for r in by_m}
        assert len(eig_costs) == 1
        eig_cost = eig_costs.pop()
        assert eig_cost > 0.0
        # ...but only the first call's elapsed time contains it: the other
        # calls are cache hits whose own elapsed time is far smaller.
        assert by_m[0].elapsed_seconds >= eig_cost
        # ``sum(elapsed)`` now counts the eigensolve once instead of |M| times.
        assert sum(r.elapsed_seconds for r in by_m) < 2 * by_m[0].elapsed_seconds

    def test_one_shot_bound_reports_eig_cost(self):
        result = spectral_bound(fft_graph(4), 4, num_eigenvalues=20)
        assert result.eig_elapsed_seconds > 0.0
        assert result.elapsed_seconds >= result.eig_elapsed_seconds


class TestSpectrumCache:
    def test_prefix_served_from_larger_entry(self):
        cache = SpectrumCache()
        graph = fft_graph(3)
        big = cache.spectrum(graph, 10)
        small = cache.spectrum(graph, 4)
        assert cache.misses == 1 and cache.hits == 1
        np.testing.assert_allclose(small.eigenvalues, big.eigenvalues[:4])
        assert small.cache_hit and not big.cache_hit

    def test_lru_eviction(self):
        cache = SpectrumCache(max_entries=1)
        g1, g2 = fft_graph(2), fft_graph(3)
        cache.spectrum(g1, 4)
        cache.spectrum(g2, 4)  # evicts g1
        cache.spectrum(g1, 4)  # must re-solve
        assert cache.misses == 3
        assert len(cache) == 1

    def test_normalization_and_options_key(self):
        cache = SpectrumCache()
        graph = fft_graph(3)
        cache.spectrum(graph, 5, normalized=True)
        cache.spectrum(graph, 5, normalized=False)
        cache.spectrum(graph, 5, eig_options=EigenSolverOptions(method="lanczos"))
        assert cache.misses == 3

    def test_sparse_assembly_is_part_of_the_key(self):
        # Dense and sparse assembly can use different solver backends, so an
        # explicit sparse=False request must never be served a sparse-solved
        # spectrum (and vice versa).
        cache = SpectrumCache()
        graph = fft_graph(3)
        cache.spectrum(graph, 5, sparse=True)
        cache.spectrum(graph, 5, sparse=False)
        assert cache.misses == 2
        # sparse=None resolves to dense for this small graph and shares the
        # dense entry.
        cache.spectrum(graph, 5, sparse=None)
        assert cache.misses == 2 and cache.hits == 1

    def test_unnormalized_scaling_applied(self):
        graph = hypercube_graph(3)
        cache = SpectrumCache()
        got = cache.spectrum(graph, 5, normalized=False).eigenvalues
        np.testing.assert_allclose(
            got,
            bound_spectrum(graph, num_eigenvalues=5, normalized=False),
            atol=1e-9,
        )

    def test_clear_resets(self):
        cache = SpectrumCache()
        cache.spectrum(fft_graph(2), 3)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_returned_eigenvalues_read_only(self):
        cache = SpectrumCache()
        values = cache.spectrum(fft_graph(3), 5).eigenvalues
        with pytest.raises(ValueError):
            values[0] = 1.0

    def test_invalid_requests_rejected(self):
        cache = SpectrumCache()
        with pytest.raises(ValueError):
            cache.spectrum(fft_graph(2), -1)
        with pytest.raises(ValueError):
            cache.spectrum(fft_graph(2), 1000)
        with pytest.raises(ValueError):
            SpectrumCache(max_entries=0)

    def test_lru_eviction_order_respects_recency(self):
        # A hit refreshes an entry's recency, so the *least recently used*
        # entry is the one evicted — not the least recently inserted.
        cache = SpectrumCache(max_entries=2)
        g1, g2, g3 = fft_graph(2), fft_graph(3), fft_graph(4)
        cache.spectrum(g1, 4)  # miss: [g1]
        cache.spectrum(g2, 4)  # miss: [g1, g2]
        cache.spectrum(g1, 4)  # hit, g1 becomes MRU: [g2, g1]
        cache.spectrum(g3, 4)  # miss, evicts g2:     [g1, g3]
        assert cache.misses == 3
        cache.spectrum(g1, 4)  # still cached
        cache.spectrum(g3, 4)  # still cached
        assert cache.misses == 3 and cache.hits == 3
        cache.spectrum(g2, 4)  # evicted above: must re-solve
        assert cache.misses == 4

    def test_prefix_hit_refreshes_recency_of_large_entry(self):
        cache = SpectrumCache(max_entries=2)
        g1, g2, g3 = fft_graph(2), fft_graph(3), fft_graph(4)
        cache.spectrum(g1, 8)
        cache.spectrum(g2, 4)
        cache.spectrum(g1, 3)  # prefix hit refreshes g1's entry
        cache.spectrum(g3, 4)  # evicts g2, not g1
        cache.spectrum(g1, 8)
        assert cache.misses == 3 and len(cache) == 2

    def test_prefix_slices_match_full_spectrum(self):
        cache = SpectrumCache()
        graph = fft_graph(4)
        full = cache.spectrum(graph, 12).eigenvalues
        for h in (1, 5, 12):
            sliced = cache.spectrum(graph, h).eigenvalues
            assert sliced.shape == (h,)
            np.testing.assert_allclose(sliced, full[:h])
            with pytest.raises(ValueError):
                sliced[0] = -1.0  # served slices are read-only
        assert cache.misses == 1 and cache.hits == 3

    def test_concurrent_gets_are_thread_safe(self):
        # Warm entries must be served concurrently without corruption: every
        # lookup is a hit, all threads observe identical eigenvalues.
        cache = SpectrumCache()
        graphs = [fft_graph(2), fft_graph(3), fft_graph(4)]
        expected = [cache.spectrum(g, 6).eigenvalues.copy() for g in graphs]
        assert cache.misses == len(graphs)

        def lookup(i: int) -> bool:
            g = graphs[i % len(graphs)]
            got = cache.spectrum(g, 6).eigenvalues
            return bool(np.array_equal(got, expected[i % len(graphs)]))

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lookup, range(200)))
        assert all(results)
        assert cache.misses == len(graphs)  # warm-up only; no solve under load
        assert cache.hits == 200

    def test_concurrent_gets_with_eviction_churn(self):
        # A tiny budget forces constant eviction under concurrency; the cache
        # must stay within budget and keep returning correct prefixes.
        cache = SpectrumCache(max_entries=2)
        graphs = [fft_graph(2), fft_graph(3), fft_graph(4), fft_graph(5)]
        baselines = [
            SpectrumCache().spectrum(g, 4).eigenvalues.copy() for g in graphs
        ]

        def churn(i: int) -> bool:
            idx = i % len(graphs)
            got = cache.spectrum(graphs[idx], 4).eigenvalues
            return bool(np.allclose(got, baselines[idx]))

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(churn, range(80)))
        assert all(results)
        assert len(cache) <= 2
        assert cache.hits + cache.misses >= 80
