"""Tests for the FFT butterfly generator (§5.2, §6.2)."""

from __future__ import annotations

import pytest

from repro.graphs.generators.fft import (
    butterfly_graph,
    fft_graph,
    fft_num_vertices,
    fft_vertex_id,
)


class TestShape:
    @pytest.mark.parametrize("levels", [0, 1, 2, 3, 4, 5])
    def test_vertex_count(self, levels):
        g = fft_graph(levels)
        assert g.num_vertices == (levels + 1) * 2**levels
        assert g.num_vertices == fft_num_vertices(levels)

    @pytest.mark.parametrize("levels", [1, 2, 3, 4, 5])
    def test_edge_count(self, levels):
        # Every non-input vertex has in-degree exactly 2.
        g = fft_graph(levels)
        assert g.num_edges == 2 * levels * 2**levels

    def test_level_zero_is_single_vertex(self):
        g = fft_graph(0)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    @pytest.mark.parametrize("levels", [2, 3, 4])
    def test_degrees(self, levels):
        g = fft_graph(levels)
        assert g.max_in_degree == 2
        assert g.max_out_degree == 2
        size = 2**levels
        assert len(g.sources()) == size  # inputs
        assert len(g.sinks()) == size  # outputs

    def test_acyclic_and_connected(self):
        g = fft_graph(4)
        g.validate()
        assert g.is_weakly_connected()

    def test_figure5_example(self):
        """The 4-point FFT of Figure 5 has 12 vertices in 3 columns."""
        g = fft_graph(2)
        assert g.num_vertices == 12
        assert len(g.sources()) == 4
        assert len(g.sinks()) == 4

    def test_butterfly_alias(self):
        assert butterfly_graph(3) == fft_graph(3)


class TestStructure:
    def test_butterfly_parents(self):
        levels = 3
        g = fft_graph(levels)
        # Column 2, row 5 (binary 101): parents are (1, 5) and (1, 5 ^ 2) = (1, 7).
        v = fft_vertex_id(levels, 2, 5)
        parents = set(g.predecessors(v))
        assert parents == {fft_vertex_id(levels, 1, 5), fft_vertex_id(levels, 1, 7)}

    def test_inputs_labeled(self):
        g = fft_graph(2)
        assert g.op(fft_vertex_id(2, 0, 0)) == "input"
        assert g.op(fft_vertex_id(2, 1, 0)) == "butterfly"

    def test_every_output_depends_on_every_input(self):
        levels = 3
        g = fft_graph(levels)
        out = fft_vertex_id(levels, levels, 0)
        ancestors = g.ancestors(out)
        inputs = {fft_vertex_id(levels, 0, r) for r in range(2**levels)}
        assert inputs <= ancestors

    def test_critical_path_length(self):
        assert fft_graph(4).longest_path_length() == 4


class TestValidation:
    def test_vertex_id_bounds(self):
        with pytest.raises(ValueError):
            fft_vertex_id(3, 4, 0)
        with pytest.raises(ValueError):
            fft_vertex_id(3, 0, 8)

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            fft_graph(-1)
