"""Tests for the eigensolvers (dense, Lanczos, power iteration, backend)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.generators import fft_graph, hypercube_graph, random_dag
from repro.graphs.laplacian import laplacian
from repro.solvers.backend import EigenSolverOptions, smallest_eigenvalues
from repro.solvers.dense import dense_smallest_eigenvalues, dense_spectrum
from repro.solvers.lanczos import lanczos_smallest_eigenvalues, lanczos_tridiagonalize
from repro.solvers.power_iteration import (
    gershgorin_upper_bound,
    power_iteration_largest_eigenvalue,
    power_iteration_smallest_eigenvalues,
)


def example_laplacian(levels: int = 3, normalized: bool = True) -> np.ndarray:
    return laplacian(fft_graph(levels), normalized=normalized)


class TestDense:
    def test_full_spectrum_sorted(self):
        spec = dense_spectrum(example_laplacian())
        assert np.all(np.diff(spec) >= -1e-12)

    def test_smallest_subset(self):
        L = example_laplacian()
        np.testing.assert_allclose(
            dense_smallest_eigenvalues(L, 5), dense_spectrum(L)[:5]
        )

    def test_accepts_sparse(self):
        L = laplacian(fft_graph(3), normalized=True, sparse=True)
        spec = dense_spectrum(L)
        assert spec.shape[0] == L.shape[0]

    def test_rejects_nonsymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            dense_spectrum(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            dense_spectrum(np.zeros((2, 3)))

    def test_too_many_eigenvalues_rejected(self):
        with pytest.raises(ValueError):
            dense_smallest_eigenvalues(np.eye(3), 4)

    def test_empty_matrix(self):
        assert dense_spectrum(np.zeros((0, 0))).shape == (0,)


class TestLanczos:
    def test_matches_dense_on_fft(self):
        L = example_laplacian(4)
        exact = dense_spectrum(L)[:8]
        result = lanczos_smallest_eigenvalues(L, 8, seed=1)
        np.testing.assert_allclose(result.eigenvalues, exact, atol=1e-5)

    def test_matches_dense_on_random_graph(self):
        L = laplacian(random_dag(60, 0.2, seed=3), normalized=True)
        exact = dense_spectrum(L)[:6]
        result = lanczos_smallest_eigenvalues(L, 6, seed=0)
        np.testing.assert_allclose(result.eigenvalues, exact, atol=1e-5)

    def test_handles_clustered_spectrum(self):
        """The hypercube Laplacian has large multiplicities."""
        L = laplacian(hypercube_graph(5), normalized=False)
        exact = dense_spectrum(L)[:10]
        result = lanczos_smallest_eigenvalues(L, 10, max_iterations=L.shape[0], seed=2)
        np.testing.assert_allclose(result.eigenvalues, exact, atol=1e-5)

    def test_sparse_input(self):
        L = laplacian(fft_graph(4), normalized=True, sparse=True)
        exact = dense_spectrum(L)[:5]
        result = lanczos_smallest_eigenvalues(L, 5, seed=0)
        np.testing.assert_allclose(result.eigenvalues, exact, atol=1e-5)

    def test_k_zero(self):
        result = lanczos_smallest_eigenvalues(np.eye(4), 0)
        assert result.eigenvalues.shape == (0,)
        assert result.converged

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            lanczos_smallest_eigenvalues(np.eye(3), 5)

    def test_tridiagonalize_orthonormal_basis(self):
        L = example_laplacian(3)
        alphas, betas, basis = lanczos_tridiagonalize(L, 20, seed=0)
        gram = basis.T @ basis
        np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-8)
        assert alphas.shape[0] == basis.shape[1]
        assert betas.shape[0] == alphas.shape[0] - 1


class TestPowerIteration:
    def test_gershgorin_bounds_largest(self):
        L = example_laplacian(3)
        assert gershgorin_upper_bound(L) >= dense_spectrum(L)[-1] - 1e-9

    def test_gershgorin_sparse(self):
        L = laplacian(fft_graph(3), normalized=True, sparse=True)
        dense_bound = gershgorin_upper_bound(np.asarray(L.todense()))
        assert gershgorin_upper_bound(L) == pytest.approx(dense_bound)

    def test_largest_eigenvalue(self):
        L = example_laplacian(3)
        value, vector = power_iteration_largest_eigenvalue(L, seed=0)
        assert value == pytest.approx(dense_spectrum(L)[-1], rel=1e-4)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_smallest_eigenvalues_match_dense(self):
        L = laplacian(random_dag(40, 0.25, seed=7), normalized=True)
        exact = dense_spectrum(L)[:4]
        approx = power_iteration_smallest_eigenvalues(L, 4, seed=1)
        np.testing.assert_allclose(approx, exact, atol=1e-3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            power_iteration_smallest_eigenvalues(np.eye(3), 4)


class TestBackend:
    def test_dense_and_sparse_agree(self):
        L_dense = example_laplacian(4)
        L_sparse = sp.csr_matrix(L_dense)
        a = smallest_eigenvalues(L_dense, 10, EigenSolverOptions(method="dense"))
        b = smallest_eigenvalues(L_sparse, 10, EigenSolverOptions(method="sparse"))
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_lanczos_and_power_backends(self):
        L = example_laplacian(3)
        exact = dense_spectrum(L)[:4]
        for method in ("lanczos", "power"):
            values = smallest_eigenvalues(L, 4, EigenSolverOptions(method=method))
            np.testing.assert_allclose(values, exact, atol=1e-3)

    def test_auto_uses_dense_for_small(self):
        L = example_laplacian(2)
        values = smallest_eigenvalues(L, 3)
        np.testing.assert_allclose(values, dense_spectrum(L)[:3], atol=1e-9)

    def test_clamps_negative_noise(self):
        values = smallest_eigenvalues(example_laplacian(3), 3)
        assert np.all(values >= 0.0)

    def test_k_zero_and_errors(self):
        L = example_laplacian(2)
        assert smallest_eigenvalues(L, 0).shape == (0,)
        with pytest.raises(ValueError):
            smallest_eigenvalues(L, -1)
        with pytest.raises(ValueError):
            smallest_eigenvalues(L, L.shape[0] + 1)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            EigenSolverOptions(method="bogus")
