"""Tests for the result dataclasses shared by bounds and baselines."""

from __future__ import annotations

import pytest

from repro.core.result import (
    BaselineBoundResult,
    ParallelBoundResult,
    SpectralBoundResult,
    _clamp_nonnegative,
)


def make_spectral(value: float = 5.0, raw: float = 5.0) -> SpectralBoundResult:
    return SpectralBoundResult(
        value=value,
        raw_value=raw,
        best_k=3,
        num_vertices=100,
        memory_size=8,
        normalized=True,
        num_eigenvalues=10,
        eigenvalues=(0.0, 0.1, 0.2),
        per_k_values={2: 1.0, 3: 5.0},
        elapsed_seconds=0.01,
    )


class TestSpectralBoundResult:
    def test_as_dict_drops_bulky_fields(self):
        data = make_spectral().as_dict()
        assert data["value"] == 5.0
        assert data["best_k"] == 3
        assert "eigenvalues" not in data
        assert "per_k_values" not in data

    def test_is_trivial_flag(self):
        assert not make_spectral(5.0).is_trivial
        assert make_spectral(0.0, raw=-3.0).is_trivial

    def test_frozen(self):
        result = make_spectral()
        with pytest.raises(AttributeError):
            result.value = 7.0  # type: ignore[misc]


class TestParallelBoundResult:
    def test_round_trip(self):
        result = ParallelBoundResult(
            value=2.0,
            raw_value=2.0,
            best_k=2,
            num_vertices=64,
            memory_size=4,
            num_processors=4,
            num_eigenvalues=5,
            eigenvalues=(0.0, 0.5),
            per_k_values={2: 2.0},
        )
        data = result.as_dict()
        assert data["num_processors"] == 4
        assert "eigenvalues" not in data


class TestBaselineBoundResult:
    def test_defaults_and_dict(self):
        result = BaselineBoundResult(
            value=3.0, method="convex-min-cut", num_vertices=12, memory_size=4
        )
        assert result.witness_vertex is None
        assert result.details == {}
        data = result.as_dict()
        assert data["method"] == "convex-min-cut"
        assert data["elapsed_seconds"] == 0.0


class TestClampHelper:
    def test_clamps_negative(self):
        assert _clamp_nonnegative(-2.5) == 0.0
        assert _clamp_nonnegative(4.0) == 4.0

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            _clamp_nonnegative(float("inf"))
        with pytest.raises(ValueError):
            _clamp_nonnegative(float("nan"))
